package perfstat

import (
	"math"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/spechpc/spechpc-sim/internal/mpi
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBarrier-8      	      20	   4490880 ns/op	  565331 B/op	      37 allocs/op
BenchmarkBarrier-8      	      20	   4321000 ns/op	  565200 B/op	      37 allocs/op
BenchmarkAllreduceSmall-8      	      20	   1578442 ns/op	  415274 B/op	      32 allocs/op
BenchmarkFig5MultiNode 	       1	2500000000 ns/op	        3.04 soma-B-x(paper:3.06)
PASS
ok  	github.com/spechpc/spechpc-sim/internal/mpi	0.240s
`

func TestParse(t *testing.T) {
	s, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"BenchmarkBarrier", "BenchmarkAllreduceSmall", "BenchmarkFig5MultiNode"}
	if len(s.Names) != len(want) {
		t.Fatalf("names = %v, want %v", s.Names, want)
	}
	for i, n := range want {
		if s.Names[i] != n {
			t.Errorf("names[%d] = %q, want %q", i, s.Names[i], n)
		}
	}
	if got := s.Values("BenchmarkBarrier", "ns/op"); len(got) != 2 || got[0] != 4490880 || got[1] != 4321000 {
		t.Errorf("Barrier ns/op samples = %v", got)
	}
	if got := s.Values("BenchmarkBarrier", "allocs/op"); len(got) != 2 || got[0] != 37 {
		t.Errorf("Barrier allocs/op samples = %v", got)
	}
	// Custom b.ReportMetric units must parse too.
	if got := s.Values("BenchmarkFig5MultiNode", "soma-B-x(paper:3.06)"); len(got) != 1 || got[0] != 3.04 {
		t.Errorf("custom metric samples = %v", got)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	pkg	0.2s",
		"goos: linux",
		"Benchmark onlyname",
		"BenchmarkX notanumber 12 ns/op",
	} {
		if _, ok := ParseLine(line); ok {
			t.Errorf("ParseLine accepted %q", line)
		}
	}
	if _, err := Parse(strings.NewReader("PASS\n")); err == nil {
		t.Error("Parse accepted output with no result lines")
	}
}

func TestMeanMedian(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Median(xs); got != 2.5 {
		t.Errorf("Median = %v, want 2.5", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd Median = %v, want 2", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Median(nil)) {
		t.Error("empty Mean/Median should be NaN")
	}
}

func TestMannWhitneyU(t *testing.T) {
	// Identical distributions: p must be 1 (no evidence of a shift).
	same := []float64{5, 5, 5, 5, 5}
	if p := MannWhitneyU(same, same); p != 1 {
		t.Errorf("identical samples: p = %v, want 1", p)
	}
	// Fully separated samples: p must be small.
	lo := []float64{1, 2, 3, 4, 5, 6}
	hi := []float64{101, 102, 103, 104, 105, 106}
	if p := MannWhitneyU(lo, hi); p > 0.01 {
		t.Errorf("separated samples: p = %v, want < 0.01", p)
	}
	// Symmetry: the two-sided p-value is direction-independent.
	p1, p2 := MannWhitneyU(lo, hi), MannWhitneyU(hi, lo)
	if math.Abs(p1-p2) > 1e-12 {
		t.Errorf("p not symmetric: %v vs %v", p1, p2)
	}
	// Heavily overlapping samples: p must be large.
	a := []float64{10, 11, 12, 13, 14}
	b := []float64{10.5, 11.5, 12, 12.5, 13.5}
	if p := MannWhitneyU(a, b); p < 0.2 {
		t.Errorf("overlapping samples: p = %v, want >= 0.2", p)
	}
	// Degenerate inputs.
	if p := MannWhitneyU(nil, hi); p != 1 {
		t.Errorf("empty side: p = %v, want 1", p)
	}
}

// TestMannWhitneyCatchesShiftSingleRunMisses is the motivating case for
// the gate upgrade: a real ~10% regression below the old 20% single-run
// threshold is detected, while a single outlier in otherwise identical
// samples is not flagged.
func TestMannWhitneyCatchesShiftSingleRunMisses(t *testing.T) {
	base := []float64{100, 101, 99, 100, 102, 98}
	regressed := []float64{110, 111, 109, 110, 112, 108} // +10% — under the old 20% bar
	if p := MannWhitneyU(base, regressed); p >= 0.05 {
		t.Errorf("10%% shift: p = %v, want < 0.05", p)
	}
	noisy := []float64{100, 101, 99, 100, 102, 130} // one 30% outlier
	if p := MannWhitneyU(base, noisy); p < 0.05 {
		t.Errorf("single outlier: p = %v, want >= 0.05 (not significant)", p)
	}
}

func makeSet(name, metric string, vals ...float64) *Set {
	s := &Set{}
	for _, v := range vals {
		s.Add(Sample{Name: name, Iters: 1, Metrics: map[string]float64{metric: v}})
	}
	return s
}

func TestCompareAndRegressed(t *testing.T) {
	oldS := makeSet("BenchmarkX", "ns/op", 100, 101, 99, 100, 102)
	newS := makeSet("BenchmarkX", "ns/op", 150, 151, 149, 150, 152)
	ds := Compare(oldS, newS, "ns/op", 0.05)
	if len(ds) != 1 {
		t.Fatalf("got %d deltas, want 1", len(ds))
	}
	d := ds[0]
	if !d.Sig || !d.Regressed(20) {
		t.Errorf("+50%% significant shift not flagged: %+v", d)
	}
	if d.Regressed(60) {
		t.Error("+50%% shift flagged despite 60% growth allowance")
	}

	// An improvement is significant but never a regression.
	faster := makeSet("BenchmarkX", "ns/op", 50, 51, 49, 50, 52)
	d = Compare(oldS, faster, "ns/op", 0.05)[0]
	if !d.Sig || d.Regressed(20) {
		t.Errorf("improvement misclassified: %+v", d)
	}

	// A disappeared benchmark always fails the gate.
	gone := makeSet("BenchmarkOther", "ns/op", 1, 2, 3)
	found := false
	for _, d := range Compare(oldS, gone, "ns/op", 0.05) {
		if d.Name == "BenchmarkX" {
			found = true
			if !d.OldOnly || !d.Regressed(20) {
				t.Errorf("missing benchmark not flagged: %+v", d)
			}
		}
	}
	if !found {
		t.Error("baseline-only benchmark absent from Compare output")
	}

	// Zero baseline growing to nonzero (e.g. allocs/op 0 -> 3).
	zeroOld := makeSet("BenchmarkX", "allocs/op", 0, 0, 0, 0, 0)
	zeroNew := makeSet("BenchmarkX", "allocs/op", 3, 3, 3, 3, 3)
	d = Compare(zeroOld, zeroNew, "allocs/op", 0.05)[0]
	if !math.IsInf(d.Pct, 1) || !d.Regressed(20) {
		t.Errorf("0 -> nonzero not flagged: %+v", d)
	}
}

func TestFormatTable(t *testing.T) {
	oldS := makeSet("BenchmarkX", "ns/op", 100, 101, 99, 100, 102)
	newS := makeSet("BenchmarkX", "ns/op", 150, 151, 149, 150, 152)
	var sb strings.Builder
	FormatTable(&sb, Compare(oldS, newS, "ns/op", 0.05), "ns/op", 0.05, 20)
	out := sb.String()
	for _, want := range []string{"BenchmarkX", "REGRESSION", "n=5", "+49.8%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
