package netsim

import (
	"math"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/sim"
	"github.com/spechpc/spechpc-sim/internal/units"
)

func TestSpecValidate(t *testing.T) {
	if err := HDR100().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := HDR100()
	bad.LinkBandwidth = 0
	if bad.Validate() == nil {
		t.Fatal("zero bandwidth not rejected")
	}
}

// TestLatencyFloor pins the conservative lookahead across fabric
// variants: the floor is exactly the inter-node latency — intra-node
// latency, bandwidth, and eager tuning never shrink or widen the
// parallel engine's window — and fabrics without a positive inter-node
// latency are rejected rather than given an unusable zero floor.
func TestLatencyFloor(t *testing.T) {
	hdr200 := HDR100()
	hdr200.Name = "HDR200 InfiniBand fat-tree"
	hdr200.LinkBandwidth *= 2
	slowWire := HDR100()
	slowWire.InterNodeLatency = 10e-6
	tightIntra := HDR100()
	tightIntra.IntraNodeLatency = 1e-12 // intra-node latency is not the floor
	eagerOff := HDR100()
	eagerOff.EagerThreshold = 0
	zeroLat := HDR100()
	zeroLat.InterNodeLatency = 0
	negLat := HDR100()
	negLat.InterNodeLatency = -1e-6
	cases := []struct {
		name    string
		spec    Spec
		want    float64
		wantErr bool
	}{
		{"HDR100", HDR100(), 1.6e-6, false},
		{"HDR200 double bandwidth", hdr200, 1.6e-6, false},
		{"slow wire", slowWire, 10e-6, false},
		{"tiny intra-node latency", tightIntra, 1.6e-6, false},
		{"eager disabled", eagerOff, 1.6e-6, false},
		{"zero inter-node latency", zeroLat, 0, true},
		{"negative inter-node latency", negLat, 0, true},
	}
	for _, c := range cases {
		got, err := c.spec.LatencyFloor()
		if c.wantErr {
			if err == nil {
				t.Errorf("%s: no error for fabric without a lookahead window", c.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
		} else if got != c.want {
			t.Errorf("%s: floor %v, want %v", c.name, got, c.want)
		}
	}
}

func TestLatencySelection(t *testing.T) {
	e := sim.NewEnv()
	n := New(e, HDR100(), 2)
	if n.Latency(0, 0) != HDR100().IntraNodeLatency {
		t.Error("intra-node latency wrong")
	}
	if n.Latency(0, 1) != HDR100().InterNodeLatency {
		t.Error("inter-node latency wrong")
	}
}

func TestEagerThreshold(t *testing.T) {
	e := sim.NewEnv()
	n := New(e, HDR100(), 1)
	if !n.Eager(1024) {
		t.Error("1 KiB message should be eager")
	}
	if n.Eager(1 * units.MiB) {
		t.Error("1 MiB message should be rendezvous")
	}
}

func TestInterNodeWireTime(t *testing.T) {
	// 12.5 GB transferred over a 12.5 GB/s link: 1 s of wire time.
	e := sim.NewEnv()
	n := New(e, HDR100(), 2)
	var done float64
	e.Spawn("sender", func(p *sim.Proc) {
		n.Transfer(p, 0, 1, 12.5*units.G)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(done-1.0) > 1e-9 {
		t.Fatalf("wire time = %v, want 1.0", done)
	}
}

func TestIntraNodeTransferCostsTwoCopies(t *testing.T) {
	// Intra-node message: copy-in + copy-out = 2x bytes at the per-flow
	// shmem cap (10 GB/s): 5 GB message -> 1 s.
	e := sim.NewEnv()
	n := New(e, HDR100(), 1)
	var done float64
	e.Spawn("sender", func(p *sim.Proc) {
		n.Transfer(p, 0, 0, 5*units.G)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(done-1.0) > 1e-9 {
		t.Fatalf("intra-node time = %v, want 1.0", done)
	}
}

func TestInjectionContention(t *testing.T) {
	// Two concurrent senders from node 0 to nodes 1 and 2 share the
	// injection link: each takes twice as long as alone.
	e := sim.NewEnv()
	n := New(e, HDR100(), 3)
	var t1, t2 float64
	e.Spawn("s1", func(p *sim.Proc) {
		n.Transfer(p, 0, 1, 12.5*units.G)
		t1 = p.Now()
	})
	e.Spawn("s2", func(p *sim.Proc) {
		n.Transfer(p, 0, 2, 12.5*units.G)
		t2 = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(t1-2.0) > 1e-9 || math.Abs(t2-2.0) > 1e-9 {
		t.Fatalf("contended transfers finished at %v and %v, want 2.0 both", t1, t2)
	}
}

func TestEjectionContention(t *testing.T) {
	// Two senders on different nodes into one receiver node share ejection.
	e := sim.NewEnv()
	n := New(e, HDR100(), 3)
	var t1, t2 float64
	e.Spawn("s1", func(p *sim.Proc) {
		n.Transfer(p, 1, 0, 12.5*units.G)
		t1 = p.Now()
	})
	e.Spawn("s2", func(p *sim.Proc) {
		n.Transfer(p, 2, 0, 12.5*units.G)
		t2 = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(t1-2.0) > 1e-9 || math.Abs(t2-2.0) > 1e-9 {
		t.Fatalf("ejection-contended transfers at %v and %v, want 2.0", t1, t2)
	}
}

func TestDisjointPairsDoNotContend(t *testing.T) {
	// 0->1 and 2->3 share nothing on a non-blocking fat-tree.
	e := sim.NewEnv()
	n := New(e, HDR100(), 4)
	var t1, t2 float64
	e.Spawn("s1", func(p *sim.Proc) {
		n.Transfer(p, 0, 1, 12.5*units.G)
		t1 = p.Now()
	})
	e.Spawn("s2", func(p *sim.Proc) {
		n.Transfer(p, 2, 3, 12.5*units.G)
		t2 = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(t1-1.0) > 1e-9 || math.Abs(t2-1.0) > 1e-9 {
		t.Fatalf("disjoint transfers at %v and %v, want 1.0 both", t1, t2)
	}
}

func TestStartTransferAsyncCompletion(t *testing.T) {
	// Cut-through: injection takes 1.0 s of wire time, and the last byte
	// lands one propagation latency after it leaves the source — arrival
	// is 1.0 + InterNodeLatency, never earlier. This latency floor on
	// every destination-side effect is what the conservative-lookahead
	// window of internal/sim/psim relies on.
	e := sim.NewEnv()
	n := New(e, HDR100(), 2)
	want := 1.0 + HDR100().InterNodeLatency
	var arrived float64
	e.Spawn("driver", func(p *sim.Proc) {
		n.StartTransfer(0, 1, 12.5*units.G, func() { arrived = e.Now() })
		// Sender continues immediately; do other things.
		p.Wait(0.1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(arrived-want) > 1e-9 {
		t.Fatalf("async arrival at %v, want %v", arrived, want)
	}
}

func TestZeroByteTransferInstant(t *testing.T) {
	e := sim.NewEnv()
	n := New(e, HDR100(), 2)
	var done float64 = -1
	e.Spawn("s", func(p *sim.Proc) {
		n.Transfer(p, 0, 1, 0)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 0 {
		t.Fatalf("zero-byte transfer took %v", done)
	}
}
