// Package netsim models the cluster interconnect: HDR100 InfiniBand links
// in a non-blocking fat-tree between nodes, and shared-memory transport
// within a node.
//
// The fat-tree is non-blocking (as on both paper clusters), so the only
// contention points are node injection and ejection: each node has one NIC
// modeled as a pair of processor-sharing resources (one per direction) at
// the link bandwidth. Intra-node messages go through a per-node shared-
// memory resource representing copy-in/copy-out bandwidth.
//
// Protocol decisions (eager vs rendezvous) belong to package mpi; netsim
// only answers "how long does moving these bytes take, under current
// contention".
package netsim

import (
	"fmt"

	"github.com/spechpc/spechpc-sim/internal/sim"
	"github.com/spechpc/spechpc-sim/internal/units"
)

// Spec holds interconnect parameters.
type Spec struct {
	// Name identifies the fabric, e.g. "HDR100 InfiniBand fat-tree".
	Name string
	// IntraNodeLatency and InterNodeLatency are one-way message latencies
	// in seconds (startup cost of a zero-byte message).
	IntraNodeLatency float64
	InterNodeLatency float64
	// LinkBandwidth is the per-direction bandwidth of one node link (B/s).
	// HDR100: 100 Gbit/s = 12.5 GB/s raw.
	LinkBandwidth float64
	// ShmemBandwidthPerNode is the aggregate intra-node message-copy
	// bandwidth (B/s); ShmemPerFlowMax caps a single intra-node transfer.
	ShmemBandwidthPerNode float64
	ShmemPerFlowMax       float64
	// EagerThreshold is the message size (bytes) above which MPI switches
	// to the rendezvous protocol. Exposed here because it is a fabric/MPI
	// tuning parameter the ablation benches sweep.
	EagerThreshold float64
	// SendOverhead and RecvOverhead are per-message CPU costs in seconds
	// (matching, header processing).
	SendOverhead float64
	RecvOverhead float64
}

// HDR100 returns the interconnect of both paper clusters: HDR100
// InfiniBand (100 Gbit/s per link and direction) in a fat-tree.
func HDR100() Spec {
	return Spec{
		Name:                  "HDR100 InfiniBand fat-tree",
		IntraNodeLatency:      0.5e-6,
		InterNodeLatency:      1.6e-6,
		LinkBandwidth:         12.5 * units.G,
		ShmemBandwidthPerNode: 220 * units.G, // copies run on-core: scales with node memory bandwidth
		ShmemPerFlowMax:       10 * units.G,
		EagerThreshold:        64 * units.KiB,
		SendOverhead:          0.25e-6,
		RecvOverhead:          0.25e-6,
	}
}

// Validate checks the spec for inconsistencies.
func (s Spec) Validate() error {
	switch {
	case s.LinkBandwidth <= 0 || s.ShmemBandwidthPerNode <= 0:
		return fmt.Errorf("netsim: %s has non-positive bandwidth", s.Name)
	case s.IntraNodeLatency < 0 || s.InterNodeLatency < 0:
		return fmt.Errorf("netsim: %s has negative latency", s.Name)
	case s.EagerThreshold < 0:
		return fmt.Errorf("netsim: %s has negative eager threshold", s.Name)
	}
	return nil
}

// Network is the runtime interconnect instance for a job spanning a number
// of nodes.
type Network struct {
	env   *sim.Env
	spec  Spec
	nodes int

	nicOut []*sim.PSResource // injection per node
	nicIn  []*sim.PSResource // ejection per node
	shmem  []*sim.PSResource // intra-node copy bandwidth per node
}

// New creates a Network for the given node count.
func New(env *sim.Env, spec Spec, nodes int) *Network {
	if nodes <= 0 {
		panic("netsim: network with no nodes")
	}
	n := &Network{env: env, spec: spec, nodes: nodes}
	n.nicOut = make([]*sim.PSResource, nodes)
	n.nicIn = make([]*sim.PSResource, nodes)
	n.shmem = make([]*sim.PSResource, nodes)
	for i := 0; i < nodes; i++ {
		n.nicOut[i] = sim.NewPSResource(env, fmt.Sprintf("nic-out%d", i), spec.LinkBandwidth, 0)
		n.nicIn[i] = sim.NewPSResource(env, fmt.Sprintf("nic-in%d", i), spec.LinkBandwidth, 0)
		n.shmem[i] = sim.NewPSResource(env, fmt.Sprintf("shmem%d", i),
			spec.ShmemBandwidthPerNode, spec.ShmemPerFlowMax)
	}
	return n
}

// Spec returns the interconnect parameters.
func (n *Network) Spec() Spec { return n.spec }

// Nodes returns the node count of the job.
func (n *Network) Nodes() int { return n.nodes }

// Latency returns the one-way zero-byte latency between two nodes.
func (n *Network) Latency(src, dst int) float64 {
	if src == dst {
		return n.spec.IntraNodeLatency
	}
	return n.spec.InterNodeLatency
}

// Eager reports whether a message of the given size uses the eager
// protocol (true) or rendezvous (false).
func (n *Network) Eager(bytes float64) bool { return bytes <= n.spec.EagerThreshold }

// Transfer moves bytes from src node to dst node, blocking the calling
// process for the wire time (excluding latency, which the caller pays
// according to its protocol). Zero-byte transfers return immediately.
func (n *Network) Transfer(p *sim.Proc, src, dst int, bytes float64) {
	if bytes <= 0 {
		return
	}
	if src == dst {
		// Copy-in + copy-out through node shared memory.
		n.shmem[src].Transfer(p, 2*bytes)
		return
	}
	out := n.nicOut[src].StartFlow(bytes, nil)
	in := n.nicIn[dst].StartFlow(bytes, nil)
	out.Await(p)
	in.Await(p)
}

// StartTransfer begins an asynchronous transfer and invokes done when the
// bytes have fully arrived (used by the eager protocol, where the sender
// does not block). The latency must be added by the caller via After.
func (n *Network) StartTransfer(src, dst int, bytes float64, done func()) {
	if bytes <= 0 {
		if done != nil {
			n.env.After(0, done)
		}
		return
	}
	if src == dst {
		n.shmem[src].StartFlow(2*bytes, done)
		return
	}
	remaining := 2
	complete := func() {
		remaining--
		if remaining == 0 && done != nil {
			done()
		}
	}
	n.nicOut[src].StartFlow(bytes, complete)
	n.nicIn[dst].StartFlow(bytes, complete)
}
