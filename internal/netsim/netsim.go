// Package netsim models the cluster interconnect: HDR100 InfiniBand links
// in a non-blocking fat-tree between nodes, and shared-memory transport
// within a node.
//
// The fat-tree is non-blocking (as on both paper clusters), so the only
// contention points are node injection and ejection: each node has one NIC
// modeled as a pair of processor-sharing resources (one per direction) at
// the link bandwidth. Intra-node messages go through a per-node shared-
// memory resource representing copy-in/copy-out bandwidth.
//
// Protocol decisions (eager vs rendezvous) belong to package mpi; netsim
// only answers "how long does moving these bytes take, under current
// contention".
package netsim

import (
	"fmt"

	"github.com/spechpc/spechpc-sim/internal/sim"
	"github.com/spechpc/spechpc-sim/internal/units"
)

// Spec holds interconnect parameters.
type Spec struct {
	// Name identifies the fabric, e.g. "HDR100 InfiniBand fat-tree".
	Name string
	// IntraNodeLatency and InterNodeLatency are one-way message latencies
	// in seconds (startup cost of a zero-byte message).
	IntraNodeLatency float64
	InterNodeLatency float64
	// LinkBandwidth is the per-direction bandwidth of one node link (B/s).
	// HDR100: 100 Gbit/s = 12.5 GB/s raw.
	LinkBandwidth float64
	// ShmemBandwidthPerNode is the aggregate intra-node message-copy
	// bandwidth (B/s); ShmemPerFlowMax caps a single intra-node transfer.
	ShmemBandwidthPerNode float64
	ShmemPerFlowMax       float64
	// EagerThreshold is the message size (bytes) above which MPI switches
	// to the rendezvous protocol. Exposed here because it is a fabric/MPI
	// tuning parameter the ablation benches sweep.
	EagerThreshold float64
	// SendOverhead and RecvOverhead are per-message CPU costs in seconds
	// (matching, header processing).
	SendOverhead float64
	RecvOverhead float64
}

// HDR100 returns the interconnect of both paper clusters: HDR100
// InfiniBand (100 Gbit/s per link and direction) in a fat-tree.
func HDR100() Spec {
	return Spec{
		Name:                  "HDR100 InfiniBand fat-tree",
		IntraNodeLatency:      0.5e-6,
		InterNodeLatency:      1.6e-6,
		LinkBandwidth:         12.5 * units.G,
		ShmemBandwidthPerNode: 220 * units.G, // copies run on-core: scales with node memory bandwidth
		ShmemPerFlowMax:       10 * units.G,
		EagerThreshold:        64 * units.KiB,
		SendOverhead:          0.25e-6,
		RecvOverhead:          0.25e-6,
	}
}

// LatencyFloor returns the minimum virtual time any signal takes to
// cross between two distinct nodes: the conservative lookahead of the
// parallel engine (internal/sim/psim). No cross-node event scheduled by
// a partition at time t can take effect on another partition before
// t+floor, so all partitions may safely run ahead together inside a
// window of that width. A fabric without a positive inter-node latency
// admits no such window — that is an error, not an infinite lookahead.
func (s Spec) LatencyFloor() (float64, error) {
	if s.InterNodeLatency <= 0 {
		return 0, fmt.Errorf("netsim: %s has no positive inter-node latency: zero-latency fabrics admit no conservative lookahead window", s.Name)
	}
	return s.InterNodeLatency, nil
}

// Validate checks the spec for inconsistencies.
func (s Spec) Validate() error {
	switch {
	case s.LinkBandwidth <= 0 || s.ShmemBandwidthPerNode <= 0:
		return fmt.Errorf("netsim: %s has non-positive bandwidth", s.Name)
	case s.IntraNodeLatency < 0 || s.InterNodeLatency < 0:
		return fmt.Errorf("netsim: %s has negative latency", s.Name)
	case s.EagerThreshold < 0:
		return fmt.Errorf("netsim: %s has negative eager threshold", s.Name)
	}
	return nil
}

// Network is the runtime interconnect instance for a job spanning a number
// of nodes.
type Network struct {
	rt    sim.Router
	spec  Spec
	nodes int

	nicOut []*sim.PSResource // injection per node
	nicIn  []*sim.PSResource // ejection per node
	shmem  []*sim.PSResource // intra-node copy bandwidth per node

	// pairChunk bump-allocates, per source node, the join records used
	// by inter-node StartTransferArg. Sharded by node so concurrent
	// partitions never contend; the chunks die with the job (they are
	// dropped on Reinit), so completions never alias across runs.
	pairChunk [][]pairXfer
}

// nodeNames caches per-node resource names for common node counts so
// building (or reinitializing) a network does not Sprintf per node.
var nodeNames = func() (n struct{ out, in, shm [64]string }) {
	for i := range n.out {
		n.out[i] = fmt.Sprintf("nic-out%d", i)
		n.in[i] = fmt.Sprintf("nic-in%d", i)
		n.shm[i] = fmt.Sprintf("shmem%d", i)
	}
	return
}()

func nodeName(kind int, i int) string {
	if i < len(nodeNames.out) {
		switch kind {
		case 0:
			return nodeNames.out[i]
		case 1:
			return nodeNames.in[i]
		default:
			return nodeNames.shm[i]
		}
	}
	switch kind {
	case 0:
		return fmt.Sprintf("nic-out%d", i)
	case 1:
		return fmt.Sprintf("nic-in%d", i)
	default:
		return fmt.Sprintf("shmem%d", i)
	}
}

// New creates a Network for the given node count on a single serial
// environment.
func New(env *sim.Env, spec Spec, nodes int) *Network {
	n := &Network{}
	n.Reinit(env, spec, nodes)
	return n
}

// Reinit repoints a pooled Network at a new serial environment; see
// ReinitRouted for the partition-aware form.
func (n *Network) Reinit(env *sim.Env, spec Spec, nodes int) {
	n.ReinitRouted(sim.UniRouter{E: env}, spec, nodes)
}

// ReinitRouted repoints a pooled Network at a new router, spec, and node
// count, reusing the per-node resource structs (and their allocated flow
// lists) from previous runs. Growth beyond the previous maximum node
// count allocates only the new tail. Each node's NIC and shared-memory
// resources live on that node's partition environment, so partitions
// only ever touch their own resources.
func (n *Network) ReinitRouted(rt sim.Router, spec Spec, nodes int) {
	if nodes <= 0 {
		panic("netsim: network with no nodes")
	}
	n.rt, n.spec, n.nodes = rt, spec, nodes
	for len(n.nicOut) < nodes {
		i := len(n.nicOut)
		env := rt.NodeEnv(i)
		n.nicOut = append(n.nicOut, sim.NewPSResource(env, nodeName(0, i), spec.LinkBandwidth, 0))
		n.nicIn = append(n.nicIn, sim.NewPSResource(env, nodeName(1, i), spec.LinkBandwidth, 0))
		n.shmem = append(n.shmem, sim.NewPSResource(env, nodeName(2, i),
			spec.ShmemBandwidthPerNode, spec.ShmemPerFlowMax))
	}
	for len(n.pairChunk) < nodes {
		n.pairChunk = append(n.pairChunk, nil)
	}
	for i := 0; i < nodes; i++ {
		env := rt.NodeEnv(i)
		n.nicOut[i].Reinit(env, nodeName(0, i), spec.LinkBandwidth, 0)
		n.nicIn[i].Reinit(env, nodeName(1, i), spec.LinkBandwidth, 0)
		n.shmem[i].Reinit(env, nodeName(2, i), spec.ShmemBandwidthPerNode, spec.ShmemPerFlowMax)
		n.pairChunk[i] = nil
	}
}

// Spec returns the interconnect parameters.
func (n *Network) Spec() Spec { return n.spec }

// Nodes returns the node count of the job.
func (n *Network) Nodes() int { return n.nodes }

// Latency returns the one-way zero-byte latency between two nodes.
func (n *Network) Latency(src, dst int) float64 {
	if src == dst {
		return n.spec.IntraNodeLatency
	}
	return n.spec.InterNodeLatency
}

// Eager reports whether a message of the given size uses the eager
// protocol (true) or rendezvous (false).
func (n *Network) Eager(bytes float64) bool { return bytes <= n.spec.EagerThreshold }

// post schedules fn(arg) on node dst's partition delay seconds after
// node src's current time.
func (n *Network) post(src, dst int, delay float64, fn func(any), arg any) {
	n.rt.Post(src, dst, n.rt.NodeEnv(src).Now()+delay, fn, arg)
}

// Transfer moves bytes from src node to dst node, blocking the calling
// process for the wire time (excluding latency, which the caller pays
// according to its protocol). Zero-byte transfers return immediately.
// Serial-router only: it awaits the ejection flow from the sender's
// partition, so the MPI runtime uses StartTransferArg instead.
func (n *Network) Transfer(p *sim.Proc, src, dst int, bytes float64) {
	if bytes <= 0 {
		return
	}
	if src == dst {
		// Copy-in + copy-out through node shared memory.
		n.shmem[src].Transfer(p, 2*bytes)
		return
	}
	out := n.nicOut[src].StartFlow(bytes, nil)
	in := n.nicIn[dst].StartFlow(bytes, nil)
	out.Await(p)
	in.Await(p)
}

// callFunc adapts a captured func() to the static-callback transfer path.
func callFunc(a any) { a.(func())() }

// StartTransfer begins an asynchronous transfer and invokes done at the
// destination when the bytes have fully arrived; the closure-capturing
// convenience form of StartTransferArg.
func (n *Network) StartTransfer(src, dst int, bytes float64, done func()) {
	if done == nil {
		n.StartTransferArg(src, dst, bytes, nil, nil)
		return
	}
	n.StartTransferArg(src, dst, bytes, callFunc, done)
}

// pairXfer joins the legs of one inter-node transfer: the last byte
// leaves the source wire one latency before it can be ejected, and the
// stored callback fires at the destination when both the propagated
// injection completion and the ejection flow have finished. It is
// allocated on the source partition's arena; need, fn, and arg are only
// touched on the destination partition after the cross-node handoff.
type pairXfer struct {
	net      *Network
	src, dst int32
	bytes    float64
	need     int8
	fn       func(any)
	arg      any
}

// xferInjected fires on the source partition when the injection flow
// drains: the last byte reaches the destination one latency later.
func xferInjected(a any) {
	x := a.(*pairXfer)
	x.net.post(int(x.src), int(x.dst), x.net.spec.InterNodeLatency, xferLegDone, x)
}

// xferEject fires on the destination partition one latency after
// injection began: the leading bytes start draining through the
// destination NIC under its current contention.
func xferEject(a any) {
	x := a.(*pairXfer)
	x.net.nicIn[x.dst].StartFlowArg(x.bytes, xferLegDone, x)
}

// xferLegDone joins the two destination-side completion legs (last byte
// arrived, ejection flow drained); the transfer callback fires on the
// later one.
func xferLegDone(a any) {
	x := a.(*pairXfer)
	x.need--
	if x.need == 0 && x.fn != nil {
		x.fn(x.arg)
	}
}

// StartTransferArg begins an asynchronous transfer and fires fn(arg) on
// the DESTINATION node's partition when the bytes have fully arrived.
// fn should be a top-level function; the inter-node join record comes
// from a per-job bump arena, so steady-state transfers allocate nothing.
//
// Inter-node transfers are cut-through: injection starts now on the
// source NIC, ejection starts one wire latency later on the destination
// NIC, and arrival is the later of "last byte left the source + one
// latency" and "ejection flow drained". Every destination-side effect
// therefore trails the source by at least the inter-node latency — the
// property the conservative-lookahead window of internal/sim/psim is
// built on. Zero-byte cross-node completions likewise arrive one
// latency after the call.
func (n *Network) StartTransferArg(src, dst int, bytes float64, fn func(any), arg any) {
	if src == dst {
		if bytes <= 0 {
			if fn != nil {
				n.rt.NodeEnv(src).AfterArg(0, fn, arg)
			}
			return
		}
		n.shmem[src].StartFlowArg(2*bytes, fn, arg)
		return
	}
	if bytes <= 0 {
		if fn != nil {
			n.post(src, dst, n.spec.InterNodeLatency, fn, arg)
		}
		return
	}
	x := sim.BumpAlloc(&n.pairChunk[src], 256)
	x.net, x.src, x.dst, x.bytes = n, int32(src), int32(dst), bytes
	x.need, x.fn, x.arg = 2, fn, arg
	n.nicOut[src].StartFlowArg(bytes, xferInjected, x)
	n.post(src, dst, n.spec.InterNodeLatency, xferEject, x)
}
