// Package netsim models the cluster interconnect: HDR100 InfiniBand links
// in a non-blocking fat-tree between nodes, and shared-memory transport
// within a node.
//
// The fat-tree is non-blocking (as on both paper clusters), so the only
// contention points are node injection and ejection: each node has one NIC
// modeled as a pair of processor-sharing resources (one per direction) at
// the link bandwidth. Intra-node messages go through a per-node shared-
// memory resource representing copy-in/copy-out bandwidth.
//
// Protocol decisions (eager vs rendezvous) belong to package mpi; netsim
// only answers "how long does moving these bytes take, under current
// contention".
package netsim

import (
	"fmt"

	"github.com/spechpc/spechpc-sim/internal/sim"
	"github.com/spechpc/spechpc-sim/internal/units"
)

// Spec holds interconnect parameters.
type Spec struct {
	// Name identifies the fabric, e.g. "HDR100 InfiniBand fat-tree".
	Name string
	// IntraNodeLatency and InterNodeLatency are one-way message latencies
	// in seconds (startup cost of a zero-byte message).
	IntraNodeLatency float64
	InterNodeLatency float64
	// LinkBandwidth is the per-direction bandwidth of one node link (B/s).
	// HDR100: 100 Gbit/s = 12.5 GB/s raw.
	LinkBandwidth float64
	// ShmemBandwidthPerNode is the aggregate intra-node message-copy
	// bandwidth (B/s); ShmemPerFlowMax caps a single intra-node transfer.
	ShmemBandwidthPerNode float64
	ShmemPerFlowMax       float64
	// EagerThreshold is the message size (bytes) above which MPI switches
	// to the rendezvous protocol. Exposed here because it is a fabric/MPI
	// tuning parameter the ablation benches sweep.
	EagerThreshold float64
	// SendOverhead and RecvOverhead are per-message CPU costs in seconds
	// (matching, header processing).
	SendOverhead float64
	RecvOverhead float64
}

// HDR100 returns the interconnect of both paper clusters: HDR100
// InfiniBand (100 Gbit/s per link and direction) in a fat-tree.
func HDR100() Spec {
	return Spec{
		Name:                  "HDR100 InfiniBand fat-tree",
		IntraNodeLatency:      0.5e-6,
		InterNodeLatency:      1.6e-6,
		LinkBandwidth:         12.5 * units.G,
		ShmemBandwidthPerNode: 220 * units.G, // copies run on-core: scales with node memory bandwidth
		ShmemPerFlowMax:       10 * units.G,
		EagerThreshold:        64 * units.KiB,
		SendOverhead:          0.25e-6,
		RecvOverhead:          0.25e-6,
	}
}

// Validate checks the spec for inconsistencies.
func (s Spec) Validate() error {
	switch {
	case s.LinkBandwidth <= 0 || s.ShmemBandwidthPerNode <= 0:
		return fmt.Errorf("netsim: %s has non-positive bandwidth", s.Name)
	case s.IntraNodeLatency < 0 || s.InterNodeLatency < 0:
		return fmt.Errorf("netsim: %s has negative latency", s.Name)
	case s.EagerThreshold < 0:
		return fmt.Errorf("netsim: %s has negative eager threshold", s.Name)
	}
	return nil
}

// Network is the runtime interconnect instance for a job spanning a number
// of nodes.
type Network struct {
	env   *sim.Env
	spec  Spec
	nodes int

	nicOut []*sim.PSResource // injection per node
	nicIn  []*sim.PSResource // ejection per node
	shmem  []*sim.PSResource // intra-node copy bandwidth per node

	// pairChunk bump-allocates the two-flow join records used by
	// inter-node StartTransferArg. The chunks die with the job (they are
	// dropped on Reinit), so completions never alias across runs.
	pairChunk []pairXfer
}

// nodeNames caches per-node resource names for common node counts so
// building (or reinitializing) a network does not Sprintf per node.
var nodeNames = func() (n struct{ out, in, shm [64]string }) {
	for i := range n.out {
		n.out[i] = fmt.Sprintf("nic-out%d", i)
		n.in[i] = fmt.Sprintf("nic-in%d", i)
		n.shm[i] = fmt.Sprintf("shmem%d", i)
	}
	return
}()

func nodeName(kind int, i int) string {
	if i < len(nodeNames.out) {
		switch kind {
		case 0:
			return nodeNames.out[i]
		case 1:
			return nodeNames.in[i]
		default:
			return nodeNames.shm[i]
		}
	}
	switch kind {
	case 0:
		return fmt.Sprintf("nic-out%d", i)
	case 1:
		return fmt.Sprintf("nic-in%d", i)
	default:
		return fmt.Sprintf("shmem%d", i)
	}
}

// New creates a Network for the given node count.
func New(env *sim.Env, spec Spec, nodes int) *Network {
	n := &Network{}
	n.Reinit(env, spec, nodes)
	return n
}

// Reinit repoints a pooled Network at a new environment, spec, and node
// count, reusing the per-node resource structs (and their allocated flow
// lists) from previous runs. Growth beyond the previous maximum node
// count allocates only the new tail.
func (n *Network) Reinit(env *sim.Env, spec Spec, nodes int) {
	if nodes <= 0 {
		panic("netsim: network with no nodes")
	}
	n.env, n.spec, n.nodes = env, spec, nodes
	n.pairChunk = nil
	for len(n.nicOut) < nodes {
		i := len(n.nicOut)
		n.nicOut = append(n.nicOut, sim.NewPSResource(env, nodeName(0, i), spec.LinkBandwidth, 0))
		n.nicIn = append(n.nicIn, sim.NewPSResource(env, nodeName(1, i), spec.LinkBandwidth, 0))
		n.shmem = append(n.shmem, sim.NewPSResource(env, nodeName(2, i),
			spec.ShmemBandwidthPerNode, spec.ShmemPerFlowMax))
	}
	for i := 0; i < nodes; i++ {
		n.nicOut[i].Reinit(env, nodeName(0, i), spec.LinkBandwidth, 0)
		n.nicIn[i].Reinit(env, nodeName(1, i), spec.LinkBandwidth, 0)
		n.shmem[i].Reinit(env, nodeName(2, i), spec.ShmemBandwidthPerNode, spec.ShmemPerFlowMax)
	}
}

// Spec returns the interconnect parameters.
func (n *Network) Spec() Spec { return n.spec }

// Nodes returns the node count of the job.
func (n *Network) Nodes() int { return n.nodes }

// Latency returns the one-way zero-byte latency between two nodes.
func (n *Network) Latency(src, dst int) float64 {
	if src == dst {
		return n.spec.IntraNodeLatency
	}
	return n.spec.InterNodeLatency
}

// Eager reports whether a message of the given size uses the eager
// protocol (true) or rendezvous (false).
func (n *Network) Eager(bytes float64) bool { return bytes <= n.spec.EagerThreshold }

// Transfer moves bytes from src node to dst node, blocking the calling
// process for the wire time (excluding latency, which the caller pays
// according to its protocol). Zero-byte transfers return immediately.
func (n *Network) Transfer(p *sim.Proc, src, dst int, bytes float64) {
	if bytes <= 0 {
		return
	}
	if src == dst {
		// Copy-in + copy-out through node shared memory.
		n.shmem[src].Transfer(p, 2*bytes)
		return
	}
	out := n.nicOut[src].StartFlow(bytes, nil)
	in := n.nicIn[dst].StartFlow(bytes, nil)
	out.Await(p)
	in.Await(p)
}

// StartTransfer begins an asynchronous transfer and invokes done when the
// bytes have fully arrived (used by the eager protocol, where the sender
// does not block). The latency must be added by the caller via After.
func (n *Network) StartTransfer(src, dst int, bytes float64, done func()) {
	if bytes <= 0 {
		if done != nil {
			n.env.After(0, done)
		}
		return
	}
	if src == dst {
		n.shmem[src].StartFlow(2*bytes, done)
		return
	}
	remaining := 2
	complete := func() {
		remaining--
		if remaining == 0 && done != nil {
			done()
		}
	}
	n.nicOut[src].StartFlow(bytes, complete)
	n.nicIn[dst].StartFlow(bytes, complete)
}

// pairXfer joins the injection and ejection flows of one inter-node
// transfer: the stored callback fires when the second flow completes.
type pairXfer struct {
	remaining int
	fn        func(any)
	arg       any
}

// pairFlowDone is the static flow-completion callback for one half of an
// inter-node transfer pair.
func pairFlowDone(a any) {
	p := a.(*pairXfer)
	p.remaining--
	if p.remaining == 0 && p.fn != nil {
		p.fn(p.arg)
	}
}

// StartTransferArg is the closure-free variant of StartTransfer: fn(arg)
// fires when the bytes have fully arrived. fn should be a top-level
// function; the inter-node join record comes from a per-job bump arena,
// so steady-state transfers allocate nothing.
func (n *Network) StartTransferArg(src, dst int, bytes float64, fn func(any), arg any) {
	if bytes <= 0 {
		if fn != nil {
			n.env.AfterArg(0, fn, arg)
		}
		return
	}
	if src == dst {
		n.shmem[src].StartFlowArg(2*bytes, fn, arg)
		return
	}
	p := sim.BumpAlloc(&n.pairChunk, 256)
	p.remaining, p.fn, p.arg = 2, fn, arg
	n.nicOut[src].StartFlowArg(bytes, pairFlowDone, p)
	n.nicIn[dst].StartFlowArg(bytes, pairFlowDone, p)
}
