// Package dvfs models dynamic voltage and frequency scaling of a CPU:
// the admissible core-clock ladder and how per-core dynamic power moves
// with the clock.
//
// The model follows the classic CMOS relation P_dyn ~ f * V(f)^2 with a
// linear voltage ramp between the minimum and maximum clock. Package
// machine composes it with the cluster power model: only the per-core
// dynamic terms scale with frequency, while the socket baseline, the DRAM
// power, and the shared uncore bandwidths (L3, memory) are frequency
// independent — which is exactly why the energy-vs-clock trade-off of the
// paper's companion studies differs so strongly between memory-bound and
// compute-bound kernels (a slow clock is nearly free when the cores wait
// for DRAM anyway).
package dvfs

import (
	"fmt"
	"math"
)

// Model describes the frequency-scaling behaviour of one CPU. The zero
// value means "no DVFS": the part runs pinned at its calibration clock
// and WithClock-style derivations are rejected.
type Model struct {
	// MinHz and MaxHz bound the admissible core clock (Hz).
	MinHz float64
	// MaxHz is the highest admissible core clock (Hz).
	MaxHz float64
	// StepHz is the granularity of the clock ladder (Hz); real parts
	// expose 100 MHz P-state steps.
	StepHz float64
	// RefHz is the calibration clock: the frequency at which the CPU's
	// per-core dynamic-power constants were measured. PowerFactor
	// returns 1 at RefHz.
	RefHz float64
	// VMin and VMax are the relative supply voltages at MinHz and MaxHz.
	// Only their ratio matters; the voltage at intermediate clocks is
	// interpolated linearly (the "linear voltage ramp").
	VMin float64
	// VMax is the relative supply voltage at MaxHz.
	VMax float64
}

// Enabled reports whether the model describes a usable clock ladder.
func (m Model) Enabled() bool { return m.MaxHz > 0 }

// Validate checks internal consistency of the model.
func (m Model) Validate() error {
	if !m.Enabled() {
		return nil // zero value: DVFS disabled, nothing to check
	}
	switch {
	case m.MinHz <= 0 || m.MaxHz < m.MinHz:
		return fmt.Errorf("dvfs: invalid clock range [%g, %g] Hz", m.MinHz, m.MaxHz)
	case m.StepHz <= 0:
		return fmt.Errorf("dvfs: non-positive step %g Hz", m.StepHz)
	case m.RefHz < m.MinHz || m.RefHz > m.MaxHz:
		return fmt.Errorf("dvfs: calibration clock %g Hz outside [%g, %g]",
			m.RefHz, m.MinHz, m.MaxHz)
	case m.VMin <= 0 || m.VMax < m.VMin:
		return fmt.Errorf("dvfs: invalid voltage ramp [%g, %g]", m.VMin, m.VMax)
	}
	return nil
}

// Quantize snaps a requested clock to the nearest ladder step and clamps
// it into [MinHz, MaxHz].
func (m Model) Quantize(hz float64) float64 {
	if !m.Enabled() {
		return hz
	}
	q := m.MinHz + math.Round((hz-m.MinHz)/m.StepHz)*m.StepHz
	switch {
	case q < m.MinHz:
		return m.MinHz
	case q > m.MaxHz:
		return m.MaxHz
	}
	return q
}

// Ladder returns every admissible clock from MinHz to MaxHz in StepHz
// increments (MaxHz is always included, even when it is off-step).
func (m Model) Ladder() []float64 {
	if !m.Enabled() {
		return nil
	}
	steps := int(math.Floor((m.MaxHz-m.MinHz)/m.StepHz + 1e-9))
	out := make([]float64, 0, steps+2)
	for i := 0; i <= steps; i++ {
		out = append(out, m.MinHz+float64(i)*m.StepHz)
	}
	if last := out[len(out)-1]; m.MaxHz-last > m.StepHz*1e-6 {
		out = append(out, m.MaxHz)
	} else {
		out[len(out)-1] = m.MaxHz // absorb float accumulation error
	}
	return out
}

// Voltage returns the relative supply voltage at a clock: a linear ramp
// from VMin at MinHz to VMax at MaxHz (clamped outside the range).
func (m Model) Voltage(hz float64) float64 {
	switch {
	case !m.Enabled():
		return 1
	case hz <= m.MinHz:
		return m.VMin
	case hz >= m.MaxHz:
		return m.VMax
	}
	t := (hz - m.MinHz) / (m.MaxHz - m.MinHz)
	return m.VMin + t*(m.VMax-m.VMin)
}

// PowerFactor returns the per-core dynamic-power multiplier at a clock,
// relative to the calibration clock RefHz: (f/f_ref) * (V(f)/V(f_ref))^2.
// It is 1 at RefHz, monotonically increasing in f, and super-linear
// thanks to the voltage ramp.
func (m Model) PowerFactor(hz float64) float64 {
	if !m.Enabled() || m.RefHz <= 0 {
		return 1
	}
	vr := m.Voltage(hz) / m.Voltage(m.RefHz)
	return (hz / m.RefHz) * vr * vr
}
