package dvfs

import (
	"math"
	"testing"
)

func testModel() Model {
	return Model{
		MinHz:  0.8e9,
		MaxHz:  2.4e9,
		StepHz: 0.1e9,
		RefHz:  2.4e9,
		VMin:   0.70,
		VMax:   1.00,
	}
}

func TestValidate(t *testing.T) {
	if err := (Model{}).Validate(); err != nil {
		t.Errorf("zero model (DVFS disabled) must validate: %v", err)
	}
	if err := testModel().Validate(); err != nil {
		t.Errorf("reference model must validate: %v", err)
	}
	bad := []Model{
		{MinHz: 2e9, MaxHz: 1e9, StepHz: 1e8, RefHz: 1.5e9, VMin: 0.7, VMax: 1},
		{MinHz: 1e9, MaxHz: 2e9, StepHz: 0, RefHz: 1.5e9, VMin: 0.7, VMax: 1},
		{MinHz: 1e9, MaxHz: 2e9, StepHz: 1e8, RefHz: 3e9, VMin: 0.7, VMax: 1},
		{MinHz: 1e9, MaxHz: 2e9, StepHz: 1e8, RefHz: 1.5e9, VMin: 1, VMax: 0.7},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d validated", i)
		}
	}
}

func TestLadder(t *testing.T) {
	m := testModel()
	ladder := m.Ladder()
	if len(ladder) != 17 {
		t.Fatalf("ladder has %d points, want 17 (0.8..2.4 GHz in 100 MHz steps)", len(ladder))
	}
	if ladder[0] != m.MinHz || ladder[len(ladder)-1] != m.MaxHz {
		t.Errorf("ladder endpoints %g..%g, want %g..%g",
			ladder[0], ladder[len(ladder)-1], m.MinHz, m.MaxHz)
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i] <= ladder[i-1] {
			t.Errorf("ladder not strictly increasing at %d", i)
		}
	}
	// An off-step MaxHz is appended after the last on-step point, not
	// substituted for it: 0.8..2.35 must contain 2.3 AND end at 2.35.
	m.MaxHz = 2.35e9
	ladder = m.Ladder()
	if ladder[len(ladder)-1] != 2.35e9 {
		t.Errorf("off-step MaxHz missing from ladder: last point %g", ladder[len(ladder)-1])
	}
	if got := ladder[len(ladder)-2]; math.Abs(got-2.3e9) > 1 {
		t.Errorf("highest on-step point %g, want 2.3e9 kept alongside off-step MaxHz", got)
	}
	if (Model{}).Ladder() != nil {
		t.Error("disabled model must have no ladder")
	}
}

func TestQuantize(t *testing.T) {
	m := testModel()
	cases := []struct{ in, want float64 }{
		{1.64e9, 1.6e9}, // snap down
		{1.66e9, 1.7e9}, // snap up
		{0.5e9, m.MinHz},
		{9e9, m.MaxHz},
		{1.6e9, 1.6e9},
	}
	for _, c := range cases {
		if got := m.Quantize(c.in); math.Abs(got-c.want) > 1 {
			t.Errorf("Quantize(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestVoltageRamp(t *testing.T) {
	m := testModel()
	if v := m.Voltage(m.MinHz); v != m.VMin {
		t.Errorf("voltage at MinHz = %g, want %g", v, m.VMin)
	}
	if v := m.Voltage(m.MaxHz); v != m.VMax {
		t.Errorf("voltage at MaxHz = %g, want %g", v, m.VMax)
	}
	mid := (m.MinHz + m.MaxHz) / 2
	want := (m.VMin + m.VMax) / 2
	if v := m.Voltage(mid); math.Abs(v-want) > 1e-12 {
		t.Errorf("voltage at midpoint = %g, want %g (linear ramp)", v, want)
	}
}

// TestPowerFactor pins the f*V(f)^2 law: unity at the calibration clock,
// strictly increasing, and super-linear in f (the voltage ramp makes a
// clock cut save more than proportionally).
func TestPowerFactor(t *testing.T) {
	m := testModel()
	if pf := m.PowerFactor(m.RefHz); math.Abs(pf-1) > 1e-12 {
		t.Errorf("power factor at RefHz = %g, want 1", pf)
	}
	prev := 0.0
	for _, hz := range m.Ladder() {
		pf := m.PowerFactor(hz)
		if pf <= prev {
			t.Errorf("power factor not strictly increasing at %g Hz", hz)
		}
		prev = pf
		// Super-linear: pf(f)/pf(ref) <= f/ref below ref (V drops too).
		if hz < m.RefHz && pf > hz/m.RefHz+1e-12 {
			t.Errorf("power factor %g at %g Hz above linear scaling %g",
				pf, hz, hz/m.RefHz)
		}
	}
	// Explicit value: at MinHz, pf = (0.8/2.4) * (0.7/1.0)^2.
	want := (0.8 / 2.4) * 0.49
	if pf := m.PowerFactor(m.MinHz); math.Abs(pf-want) > 1e-12 {
		t.Errorf("power factor at MinHz = %g, want %g", pf, want)
	}
	if pf := (Model{}).PowerFactor(1e9); pf != 1 {
		t.Errorf("disabled model power factor = %g, want 1", pf)
	}
}
