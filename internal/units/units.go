// Package units provides byte/flop/power quantities and human-readable
// formatting shared by the machine model and the reporting layer.
package units

import "fmt"

// Binary byte sizes.
const (
	KiB = 1024.0
	MiB = 1024.0 * KiB
	GiB = 1024.0 * MiB
	TiB = 1024.0 * GiB
)

// Decimal sizes/rates (used for bandwidths and flop rates, matching the
// paper's GB/s and Gflop/s conventions).
const (
	K = 1e3
	M = 1e6
	G = 1e9
	T = 1e12
)

// Bytes formats a byte count with a binary suffix.
func Bytes(v float64) string {
	switch {
	case v >= TiB:
		return fmt.Sprintf("%.2f TiB", v/TiB)
	case v >= GiB:
		return fmt.Sprintf("%.2f GiB", v/GiB)
	case v >= MiB:
		return fmt.Sprintf("%.2f MiB", v/MiB)
	case v >= KiB:
		return fmt.Sprintf("%.2f KiB", v/KiB)
	default:
		return fmt.Sprintf("%.0f B", v)
	}
}

// BytesDecimal formats a byte count with a decimal suffix (GB, TB), the
// convention the paper uses for data volumes.
func BytesDecimal(v float64) string {
	switch {
	case v >= T:
		return fmt.Sprintf("%.2f TB", v/T)
	case v >= G:
		return fmt.Sprintf("%.2f GB", v/G)
	case v >= M:
		return fmt.Sprintf("%.2f MB", v/M)
	case v >= K:
		return fmt.Sprintf("%.2f kB", v/K)
	default:
		return fmt.Sprintf("%.0f B", v)
	}
}

// Bandwidth formats a rate in bytes/s as GB/s (decimal), the paper's unit.
func Bandwidth(bytesPerSec float64) string {
	return fmt.Sprintf("%.1f GB/s", bytesPerSec/G)
}

// FlopRate formats a flop/s rate with an appropriate decimal suffix.
func FlopRate(flopsPerSec float64) string {
	switch {
	case flopsPerSec >= T:
		return fmt.Sprintf("%.2f Tflop/s", flopsPerSec/T)
	case flopsPerSec >= G:
		return fmt.Sprintf("%.2f Gflop/s", flopsPerSec/G)
	case flopsPerSec >= M:
		return fmt.Sprintf("%.2f Mflop/s", flopsPerSec/M)
	default:
		return fmt.Sprintf("%.0f flop/s", flopsPerSec)
	}
}

// Power formats watts.
func Power(w float64) string {
	if w >= 1000 {
		return fmt.Sprintf("%.2f kW", w/1000)
	}
	return fmt.Sprintf("%.1f W", w)
}

// Energy formats joules.
func Energy(j float64) string {
	switch {
	case j >= 1e6:
		return fmt.Sprintf("%.3f MJ", j/1e6)
	case j >= 1e3:
		return fmt.Sprintf("%.2f kJ", j/1e3)
	default:
		return fmt.Sprintf("%.1f J", j)
	}
}

// Frequency formats a clock rate in Hz as GHz/MHz, the convention used
// for DVFS clock ladders.
func Frequency(hz float64) string {
	if hz >= G {
		return fmt.Sprintf("%.1f GHz", hz/G)
	}
	return fmt.Sprintf("%.0f MHz", hz/M)
}

// Seconds formats a duration in seconds with sensible precision.
func Seconds(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f s", s)
	case s >= 1:
		return fmt.Sprintf("%.2f s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2f ms", s*1e3)
	default:
		return fmt.Sprintf("%.1f µs", s*1e6)
	}
}
