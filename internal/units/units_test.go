package units

import (
	"strings"
	"testing"
)

func TestBytesBinary(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{512, "512 B"},
		{2 * KiB, "2.00 KiB"},
		{1.25 * MiB, "1.25 MiB"},
		{27 * MiB, "27.00 MiB"},
		{3.5 * GiB, "3.50 GiB"},
		{2 * TiB, "2.00 TiB"},
	}
	for _, c := range cases {
		if got := Bytes(c.v); got != c.want {
			t.Errorf("Bytes(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestBytesDecimal(t *testing.T) {
	if got := BytesDecimal(2.5 * G); got != "2.50 GB" {
		t.Errorf("got %q", got)
	}
	if got := BytesDecimal(1.2 * T); got != "1.20 TB" {
		t.Errorf("got %q", got)
	}
}

func TestBandwidthAndFlops(t *testing.T) {
	if got := Bandwidth(76.5 * G); got != "76.5 GB/s" {
		t.Errorf("bandwidth %q", got)
	}
	if got := FlopRate(5.53 * T); !strings.Contains(got, "Tflop/s") {
		t.Errorf("flop rate %q", got)
	}
	if got := FlopRate(400 * G); !strings.Contains(got, "Gflop/s") {
		t.Errorf("flop rate %q", got)
	}
}

func TestPowerEnergy(t *testing.T) {
	if got := Power(244); got != "244.0 W" {
		t.Errorf("power %q", got)
	}
	if got := Power(8000); got != "8.00 kW" {
		t.Errorf("power %q", got)
	}
	if got := Energy(2.5e6); got != "2.500 MJ" {
		t.Errorf("energy %q", got)
	}
	if got := Energy(1500); got != "1.50 kJ" {
		t.Errorf("energy %q", got)
	}
}

func TestSeconds(t *testing.T) {
	for _, c := range []struct {
		v    float64
		want string
	}{
		{250, "250 s"},
		{1.5, "1.50 s"},
		{0.012, "12.00 ms"},
		{3e-6, "3.0 µs"},
	} {
		if got := Seconds(c.v); got != c.want {
			t.Errorf("Seconds(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
