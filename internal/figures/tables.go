package figures

import (
	"fmt"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/report"
	"github.com/spechpc/spechpc-sim/internal/units"
)

// table1Inputs holds the key workload parameters of Table 1 (tiny, small)
// as presentation strings; the operative values live in each kernel's
// config.
var table1Inputs = map[string][2]string{
	"lbm":        {"lattice 4096x16384, 600 iters", "lattice 12000x48000, 500 iters"},
	"soma":       {"14e6 polymers, 200 steps", "25e6 polymers, 400 steps"},
	"tealeaf":    {"8192^2 cells, CG 1e-15, 100 steps x 350 PPCG", "16384^2 cells, CG 1e-15, 100 steps x 350 PPCG"},
	"cloverleaf": {"15360^2 mesh, 400 steps", "61440x30720 mesh, 500 steps"},
	"minisweep":  {"96x64x64, 64 groups, 32 angles, 40 sweeps", "128x64x64, 64 groups, 32 angles, 80 sweeps"},
	"pot3d":      {"nr=173 nt=361 np=1171, PCG", "nr=325 nt=450 np=2050, PCG"},
	"sph-exa":    {"210^3 particles, 80 steps", "350^3 particles, 100 steps"},
	"hpgmgfv":    {"512^3 grid (boxes 32^3), 300 steps", "1024^3 grid (boxes 32^3), 300 steps"},
	"weather":    {"24000x3000 grid, 600 steps", "192000x1250 grid, 600 steps"},
}

// Table1 reproduces the benchmark-attribute table.
func Table1(ctx *Context) error {
	t := report.NewTable("Table 1: SPEChpc 2021 benchmark attributes",
		"ID", "Name", "Language", "LOC", "Collective", "Tiny input", "Small input")
	for _, b := range bench.All() {
		in := table1Inputs[b.Name]
		t.AddRow(fmt.Sprintf("%02d", b.ID), b.Name, b.Language,
			fmt.Sprintf("%d", b.LOC), b.Collective, in[0], in[1])
	}
	if err := t.Write(ctx.out()); err != nil {
		return err
	}
	return ctx.saveCSV("table1.csv", t)
}

// Table2 reproduces the numerics/domain table.
func Table2(ctx *Context) error {
	t := report.NewTable("Table 2: numerics and application domains",
		"Name", "Numerical brief information", "Application domain")
	for _, b := range bench.All() {
		t.AddRow(b.Name, b.Numerics, b.Domain)
	}
	if err := t.Write(ctx.out()); err != nil {
		return err
	}
	return ctx.saveCSV("table2.csv", t)
}

// Table3 reproduces the hardware/software attribute table from the
// registered machine presets of the context.
func Table3(ctx *Context) error {
	clusters, err := ctx.clusterSpecs()
	if err != nil {
		return err
	}
	cols := []string{"Attribute"}
	for _, cs := range clusters {
		cols = append(cols, cs.Name)
	}
	t := report.NewTable("Table 3: key hardware attributes", cols...)
	row := func(name string, f func(*machine.ClusterSpec) string) {
		cells := []string{name}
		for _, cs := range clusters {
			cells = append(cells, f(cs))
		}
		t.AddRow(cells...)
	}
	row("Processor", func(c *machine.ClusterSpec) string { return c.CPU.Name })
	row("Base clock", func(c *machine.ClusterSpec) string {
		return fmt.Sprintf("%.1f GHz", c.CPU.BaseClockHz/1e9)
	})
	row("Physical cores per node", func(c *machine.ClusterSpec) string {
		return fmt.Sprintf("%d", c.CPU.CoresPerNode())
	})
	row("ccNUMA domains per node", func(c *machine.ClusterSpec) string {
		return fmt.Sprintf("%d", c.CPU.DomainsPerNode())
	})
	row("Sockets per node", func(c *machine.ClusterSpec) string {
		return fmt.Sprintf("%d", c.CPU.SocketsPerNode)
	})
	row("Per-core L1/L2", func(c *machine.ClusterSpec) string {
		return fmt.Sprintf("%s / %s", units.Bytes(c.CPU.L1PerCore), units.Bytes(c.CPU.L2PerCore))
	})
	row("L3 per ccNUMA domain", func(c *machine.ClusterSpec) string {
		return units.Bytes(c.CPU.L3PerDomain)
	})
	row("Theor. memory BW per domain", func(c *machine.ClusterSpec) string {
		return units.Bandwidth(c.CPU.MemTheoreticalPerDomain)
	})
	row("Saturated memory BW per domain", func(c *machine.ClusterSpec) string {
		return units.Bandwidth(c.CPU.MemSaturatedPerDomain)
	})
	row("Node DP peak", func(c *machine.ClusterSpec) string {
		return units.FlopRate(c.CPU.NodePeakFlops())
	})
	row("TDP per socket", func(c *machine.ClusterSpec) string {
		return units.Power(c.CPU.TDPPerSocket)
	})
	row("Baseline power per socket", func(c *machine.ClusterSpec) string {
		return units.Power(c.CPU.BasePowerPerSocket)
	})
	row("Interconnect", func(c *machine.ClusterSpec) string { return "HDR100 InfiniBand fat-tree" })
	row("Nodes used", func(c *machine.ClusterSpec) string { return fmt.Sprintf("%d", c.MaxNodes) })
	if err := t.Write(ctx.out()); err != nil {
		return err
	}
	return ctx.saveCSV("table3.csv", t)
}
