package figures

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quickCtx returns a context writing to a buffer and a temp dir.
func quickCtx(t *testing.T) (*Context, *strings.Builder, string) {
	t.Helper()
	dir := t.TempDir()
	ctx := NewContext(dir, true)
	var sb strings.Builder
	ctx.W = &sb
	return ctx, &sb, dir
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	if len(seen) != 14 {
		t.Errorf("got %d experiments, want 14", len(seen))
	}
}

// TestFigEnergyClock checks the frequency study produces the Z-plot-style
// curves, the per-clock tables, and the energy-optimal summary with the
// expected memory-bound vs compute-bound contrast.
func TestFigEnergyClock(t *testing.T) {
	ctx, sb, dir := quickCtx(t)
	if err := FigEnergyClock(ctx); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"wall time vs energy across the clock ladder",
		"energy-optimal operating points",
		"memory-bound", "compute-bound",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frequency study output missing %q", want)
		}
	}
	for _, f := range []string{
		"figclock_zplot_ClusterA.csv", "figclock_zplot_ClusterB.csv",
		"figclock_points_ClusterA.csv", "figclock_points_ClusterB.csv",
		"figclock_optimal.csv",
	} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}
}

func TestTables(t *testing.T) {
	ctx, sb, dir := quickCtx(t)
	for _, f := range []func(*Context) error{Table1, Table2, Table3} {
		if err := f(ctx); err != nil {
			t.Fatal(err)
		}
	}
	out := sb.String()
	for _, want := range []string{"lbm", "weather", "Ice Lake", "Sapphire Rapids", "ccNUMA"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables output missing %q", want)
		}
	}
	for _, f := range []string{"table1.csv", "table2.csv", "table3.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}
}

func TestTextTables(t *testing.T) {
	ctx, sb, dir := quickCtx(t)
	if err := TextEfficiency(ctx); err != nil {
		t.Fatal(err)
	}
	// TextAcceleration draws from the same node sweeps TextEfficiency
	// already paid for; the campaign memo must serve it without any
	// fresh simulation.
	afterEff := ctx.Engine.Stats()
	if err := TextAcceleration(ctx); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Engine.Stats(); got.Misses != afterEff.Misses {
		t.Errorf("TextAcceleration re-simulated node sweeps: misses %d -> %d",
			afterEff.Misses, got.Misses)
	}
	if err := TextSIMD(ctx); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "parallel efficiency") || !strings.Contains(out, "acceleration factor") {
		t.Errorf("text tables incomplete:\n%s", out)
	}
	for _, f := range []string{"text_efficiency.csv", "text_acceleration.csv", "text_simd.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing artifact %s", f)
		}
	}
}

func TestFig1Artifacts(t *testing.T) {
	ctx, sb, dir := quickCtx(t)
	if err := Fig1(ctx); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "speedup vs MPI processes") {
		t.Error("fig1 plot missing")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "fig1_*.csv"))
	if len(files) < 6 {
		t.Errorf("fig1 produced %d CSVs, want >= 6", len(files))
	}
}

func TestFig2IncludesInsets(t *testing.T) {
	ctx, sb, _ := quickCtx(t)
	if err := Fig2(ctx); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "minisweep at 59 processes") {
		t.Error("minisweep inset missing")
	}
	if !strings.Contains(out, "lbm at 71 processes") {
		t.Error("lbm inset missing")
	}
}

func TestFig3And4(t *testing.T) {
	ctx, sb, dir := quickCtx(t)
	if err := Fig3(ctx); err != nil {
		t.Fatal(err)
	}
	if err := Fig4(ctx); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "zero-core baseline") {
		t.Error("baseline extrapolation missing")
	}
	if !strings.Contains(out, "Z-plot") {
		t.Error("Z-plot missing")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "fig*_*.csv"))
	if len(files) < 8 {
		t.Errorf("fig3/4 produced %d CSVs", len(files))
	}
}

// TestFig5CasesFig6 also pins the campaign-cache guarantee: Fig5 pays
// for the multi-node sweeps once, and TextCases and Fig6 are then served
// entirely from the memo — each (benchmark, cluster, class, ranks) job
// simulates at most once per process.
func TestFig5CasesFig6(t *testing.T) {
	ctx, sb, dir := quickCtx(t)
	if err := Fig5(ctx); err != nil {
		t.Fatal(err)
	}
	after5 := ctx.Engine.Stats()
	if after5.Misses == 0 {
		t.Fatal("Fig5 simulated nothing")
	}
	if err := TextCases(ctx); err != nil {
		t.Fatal(err)
	}
	if err := Fig6(ctx); err != nil {
		t.Fatal(err)
	}
	final := ctx.Engine.Stats()
	if final.Misses != after5.Misses {
		t.Errorf("TextCases/Fig6 re-simulated jobs: misses %d -> %d",
			after5.Misses, final.Misses)
	}
	if final.Hits <= after5.Hits {
		t.Errorf("no cache hits recorded across experiments: %+v", final)
	}
	out := sb.String()
	if !strings.Contains(out, "scaling cases") || !strings.Contains(out, "total power") {
		t.Errorf("fig5/cases/fig6 output incomplete")
	}
	for _, f := range []string{"fig5_speedup_ClusterA.csv", "text_cases.csv", "fig6_power_ClusterB.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing artifact %s", f)
		}
	}
}
