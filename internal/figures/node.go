package figures

import (
	"fmt"

	"github.com/spechpc/spechpc-sim/internal/analysis"
	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/report"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/trace"
)

// memoryBound / nonMemoryBound split the suite as the paper's Fig. 1 does.
func splitByMemoryBound() (memBound, nonMemBound []string) {
	for _, b := range bench.All() {
		if b.MemoryBound {
			memBound = append(memBound, b.Name)
		} else {
			nonMemBound = append(nonMemBound, b.Name)
		}
	}
	return memBound, nonMemBound
}

// nodeSweepAll runs the tiny-suite node sweep for every benchmark on one
// cluster as a single parallel campaign batch.
func (ctx *Context) nodeSweepAll(cs *machine.ClusterSpec) (map[string][]spec.RunResult, error) {
	out, err := ctx.sweepAll(cs, bench.Tiny, ctx.nodePoints(cs))
	if err != nil {
		return nil, fmt.Errorf("node sweep on %s: %w", cs.Name, err)
	}
	return out, nil
}

// Fig1 runs the Fig. 1 experiment: warm the scenario plan on the
// campaign engine, then render.
func Fig1(ctx *Context) error { return ctx.runPlan(fig1Scenario, renderFig1) }

// renderFig1 renders node-level speedup and total-vs-AVX performance for
// both clusters (Fig. 1a-f).
func renderFig1(ctx *Context) error {
	clusters, err := ctx.clusterSpecs()
	if err != nil {
		return err
	}
	for _, cs := range clusters {
		sweeps, err := ctx.nodeSweepAll(cs)
		if err != nil {
			return err
		}
		// (a, d): speedup for all nine codes.
		spPlot := report.NewPlot(
			fmt.Sprintf("Fig.1 %s speedup vs MPI processes (tiny)", cs.Name),
			"processes", "speedup")
		var spSeries []report.Series
		for _, name := range bench.Names() {
			pts := analysis.Points(sweeps[name])
			sp := analysis.Speedup(pts)
			xs := make([]float64, len(pts))
			for i, p := range pts {
				xs[i] = p.Ranks
			}
			spPlot.Add(name, xs, sp)
			spSeries = append(spSeries, report.Series{Name: name, X: xs, Y: sp})
		}
		if err := spPlot.Write(ctx.out()); err != nil {
			return err
		}
		if err := ctx.saveSeriesCSV(fmt.Sprintf("fig1_speedup_%s.csv", cs.Name), "ranks", spSeries); err != nil {
			return err
		}
		// (b-c, e-f): DP vs AVX-DP performance, split by memory-boundness.
		memB, nonMemB := splitByMemoryBound()
		for _, group := range []struct {
			tag   string
			names []string
		}{{"nonmem", nonMemB}, {"mem", memB}} {
			perfPlot := report.NewPlot(
				fmt.Sprintf("Fig.1 %s DP vs AVX-DP performance (%s-bound codes)", cs.Name, group.tag),
				"processes", "Mflop/s")
			var series []report.Series
			for _, name := range group.names {
				pts := analysis.Points(sweeps[name])
				xs := make([]float64, len(pts))
				dp := make([]float64, len(pts))
				avx := make([]float64, len(pts))
				for i, p := range pts {
					xs[i] = p.Ranks
					dp[i] = p.Perf / 1e6
					avx[i] = p.PerfSIMD / 1e6
				}
				perfPlot.Add("DP-"+name, xs, dp)
				perfPlot.Add("AVX-"+name, xs, avx)
				series = append(series,
					report.Series{Name: "DP-" + name, X: xs, Y: dp},
					report.Series{Name: "AVX-DP-" + name, X: xs, Y: avx})
			}
			if err := perfPlot.Write(ctx.out()); err != nil {
				return err
			}
			if err := ctx.saveSeriesCSV(
				fmt.Sprintf("fig1_perf_%s_%s.csv", group.tag, cs.Name), "ranks", series); err != nil {
				return err
			}
		}
	}
	return nil
}

// TextEfficiency runs the parallel-efficiency experiment.
func TextEfficiency(ctx *Context) error {
	return ctx.runPlan(nodeSweepScenario, renderTextEfficiency)
}

// renderTextEfficiency reproduces the Sect. 4.1.1 parallel-efficiency
// table (ccNUMA-domain baseline, percent).
func renderTextEfficiency(ctx *Context) error {
	t := report.NewTable("Sect. 4.1.1: parallel efficiency %, domain baseline",
		append([]string{"Cluster"}, bench.Names()...)...)
	clusters, err := ctx.clusterSpecs()
	if err != nil {
		return err
	}
	for _, cs := range clusters {
		sweeps, err := ctx.nodeSweepAll(cs)
		if err != nil {
			return err
		}
		cells := []string{cs.Name}
		for _, name := range bench.Names() {
			pts := analysis.Points(sweeps[name])
			eff, err := analysis.DomainEfficiency(pts,
				cs.CPU.CoresPerDomain(), cs.CPU.CoresPerNode())
			if err != nil {
				return err
			}
			cells = append(cells, fmt.Sprintf("%.0f", eff))
		}
		t.AddRow(cells...)
	}
	if err := t.Write(ctx.out()); err != nil {
		return err
	}
	return ctx.saveCSV("text_efficiency.csv", t)
}

// TextAcceleration runs the acceleration-factor experiment.
func TextAcceleration(ctx *Context) error {
	return ctx.runPlan(nodeSweepScenario, renderTextAcceleration)
}

// renderTextAcceleration reproduces the Sect. 4.1.2 node acceleration
// factors: each cluster's full-node wall time relative to the first
// (baseline) cluster of the context — ClusterB over ClusterA in the
// paper setup.
func renderTextAcceleration(ctx *Context) error {
	clusters, err := ctx.clusterSpecs()
	if err != nil {
		return err
	}
	if len(clusters) < 2 {
		// A single-cluster study has no cross-machine factor to report;
		// skip rather than abort the remaining experiments.
		_, err := fmt.Fprintf(ctx.out(),
			"Sect. 4.1.2 acceleration factors skipped: need >= 2 clusters, have %d\n",
			len(clusters))
		return err
	}
	base := clusters[0]
	sweepsBase, err := ctx.nodeSweepAll(base)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Sect. 4.1.2: node acceleration factor over %s", base.Name),
		append([]string{""}, bench.Names()...)...)
	for _, cs := range clusters[1:] {
		sweeps, err := ctx.nodeSweepAll(cs)
		if err != nil {
			return err
		}
		cells := []string{fmt.Sprintf("%s over %s", cs.Name, base.Name)}
		for _, name := range bench.Names() {
			lastBase := sweepsBase[name][len(sweepsBase[name])-1].Usage
			last := sweeps[name][len(sweeps[name])-1].Usage
			cells = append(cells, fmt.Sprintf("%.2f",
				analysis.AccelerationFactor(lastBase.Wall, last.Wall)))
		}
		t.AddRow(cells...)
	}
	if err := t.Write(ctx.out()); err != nil {
		return err
	}
	return ctx.saveCSV("text_acceleration.csv", t)
}

// TextSIMD runs the vectorization-ratio experiment.
func TextSIMD(ctx *Context) error { return ctx.runPlan(simdScenario, renderTextSIMD) }

// renderTextSIMD reproduces the Sect. 4.1.3 vectorization-ratio table
// (the paper measures it on the Ice Lake system).
func renderTextSIMD(ctx *Context) error {
	a, err := paperCluster("ClusterA")
	if err != nil {
		return err
	}
	t := report.NewTable("Sect. 4.1.3: vectorization percentage (paper target in parentheses)",
		append([]string{""}, bench.Names()...)...)
	cells := []string{"measured"}
	for _, name := range bench.Names() {
		res, err := ctx.sweep(a, name, bench.Tiny, []int{4})
		if err != nil {
			return err
		}
		b, _ := bench.Get(name)
		cells = append(cells, fmt.Sprintf("%.1f (%.1f)",
			100*res[0].Usage.SIMDRatio(), b.VectorPct))
	}
	t.AddRow(cells...)
	if err := t.Write(ctx.out()); err != nil {
		return err
	}
	return ctx.saveCSV("text_simd.csv", t)
}

// Fig2 runs the Fig. 2 experiment.
func Fig2(ctx *Context) error { return ctx.runPlan(fig2Scenario, renderFig2) }

// renderFig2 renders node bandwidth/volume behaviour plus the two
// ITAC-style insets (minisweep serialization at 59 ranks, lbm straggler
// at 71).
func renderFig2(ctx *Context) error {
	clusters, err := ctx.clusterSpecs()
	if err != nil {
		return err
	}
	for _, cs := range clusters {
		sweeps, err := ctx.nodeSweepAll(cs)
		if err != nil {
			return err
		}
		type metric struct {
			tag  string
			name string
			get  func(analysis.Point) float64
		}
		metrics := []metric{
			{"membw", "memory bandwidth [GB/s]", func(p analysis.Point) float64 { return p.MemBW / 1e9 }},
			{"memvol", "memory data volume [GB]", func(p analysis.Point) float64 { return p.BytesMem / 1e9 }},
		}
		for _, m := range metrics {
			plot := report.NewPlot(
				fmt.Sprintf("Fig.2 %s %s (tiny)", cs.Name, m.name), "processes", m.name)
			var series []report.Series
			for _, name := range bench.Names() {
				pts := analysis.Points(sweeps[name])
				xs := make([]float64, len(pts))
				ys := make([]float64, len(pts))
				for i, p := range pts {
					xs[i] = p.Ranks
					ys[i] = m.get(p)
				}
				plot.Add(name, xs, ys)
				series = append(series, report.Series{Name: name, X: xs, Y: ys})
			}
			if err := plot.Write(ctx.out()); err != nil {
				return err
			}
			if err := ctx.saveSeriesCSV(
				fmt.Sprintf("fig2_%s_%s.csv", m.tag, cs.Name), "ranks", series); err != nil {
				return err
			}
		}
	}
	// (c, d) L3/L2 bandwidth for the codes the paper highlights.
	a, err := paperCluster("ClusterA")
	if err != nil {
		return err
	}
	cachePlot := report.NewPlot("Fig.2 cache bandwidths on ClusterA (lbm, minisweep, pot3d)",
		"processes", "GB/s")
	sweepsA, err := ctx.nodeSweepAll(a)
	if err != nil {
		return err
	}
	var cacheSeries []report.Series
	for _, name := range []string{"lbm", "minisweep", "pot3d"} {
		pts := sweepsA[name]
		xs := make([]float64, len(pts))
		l3 := make([]float64, len(pts))
		l2 := make([]float64, len(pts))
		for i, r := range pts {
			xs[i] = float64(r.Usage.Ranks)
			l3[i] = r.Usage.L3Bandwidth() / 1e9
			l2[i] = r.Usage.L2Bandwidth() / 1e9
		}
		cachePlot.Add("L3-"+name, xs, l3)
		cachePlot.Add("L2-"+name, xs, l2)
		cacheSeries = append(cacheSeries,
			report.Series{Name: "L3-" + name, X: xs, Y: l3},
			report.Series{Name: "L2-" + name, X: xs, Y: l2})
	}
	if err := cachePlot.Write(ctx.out()); err != nil {
		return err
	}
	if err := ctx.saveSeriesCSV("fig2_cachebw_ClusterA.csv", "ranks", cacheSeries); err != nil {
		return err
	}
	return fig2Insets(ctx)
}

// fig2Insets reproduces the two process timelines: minisweep at 59
// processes (MPI_Recv-dominated serialization) and lbm at 71 (one slow
// straggler rank).
func fig2Insets(ctx *Context) error {
	a, err := paperCluster("ClusterA")
	if err != nil {
		return err
	}
	// minisweep at 59 ranks.
	ms, err := ctx.run(spec.RunSpec{
		Benchmark: "minisweep", Class: bench.Tiny, Cluster: a, Ranks: 59,
		Options: bench.Options{SimSteps: 1},
	})
	if err != nil {
		return err
	}
	t := report.NewTable("Fig.2(g) inset: minisweep at 59 processes, global time shares",
		"state", "share %")
	for _, k := range []trace.Kind{trace.KindCompute, trace.KindRecv, trace.KindSend} {
		t.AddRow(k.String(), fmt.Sprintf("%.1f", 100*ms.Trace.GlobalFraction(k)))
	}
	if err := t.Write(ctx.out()); err != nil {
		return err
	}
	if err := ctx.saveCSV("fig2_inset_minisweep59.csv", t); err != nil {
		return err
	}
	// lbm at 71 ranks: per-rank compute time identifies the straggler.
	lb, err := ctx.run(spec.RunSpec{
		Benchmark: "lbm", Class: bench.Tiny, Cluster: a, Ranks: 71,
		Options: bench.Options{SimSteps: 2},
	})
	if err != nil {
		return err
	}
	slowest := lb.Trace.SlowestRank()
	t2 := report.NewTable("Fig.2(h) inset: lbm at 71 processes",
		"quantity", "value")
	t2.AddRow("straggler rank (paper: 70)", fmt.Sprintf("%d", slowest))
	t2.AddRow("straggler compute time share vs median",
		fmt.Sprintf("%.2fx", stragglerRatio(lb.Trace)))
	t2.AddRow("global MPI_Barrier share %",
		fmt.Sprintf("%.1f", 100*lb.Trace.GlobalFraction(trace.KindBarrier)))
	if err := t2.Write(ctx.out()); err != nil {
		return err
	}
	return ctx.saveCSV("fig2_inset_lbm71.csv", t2)
}

// stragglerRatio returns the slowest rank's compute time over the median
// rank's compute time.
func stragglerRatio(rec *trace.Recorder) float64 {
	n := rec.Ranks()
	times := make([]float64, n)
	for i := 0; i < n; i++ {
		times[i] = rec.Sum(i, trace.KindCompute)
	}
	slow := times[rec.SlowestRank()]
	// Median by simple selection.
	sorted := append([]float64(nil), times...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	med := sorted[n/2]
	if med == 0 {
		return 0
	}
	return slow / med
}

// Fig3 runs the Fig. 3 experiment.
func Fig3(ctx *Context) error { return ctx.runPlan(domainAndNodeScenario, renderFig3) }

// renderFig3 renders chip/DRAM power vs speedup on one ccNUMA domain
// (a, c) and node-level power vs processes (b, d), including the
// zero-core baseline extrapolation.
func renderFig3(ctx *Context) error {
	clusters, err := ctx.clusterSpecs()
	if err != nil {
		return err
	}
	for _, cs := range clusters {
		domPts := ctx.domainPoints(cs)
		domSweeps, err := ctx.sweepAll(cs, bench.Tiny, domPts)
		if err != nil {
			return err
		}
		chipPlot := report.NewPlot(
			fmt.Sprintf("Fig.3 %s chip power vs speedup (one ccNUMA domain)", cs.Name),
			"speedup", "W")
		dramPlot := report.NewPlot(
			fmt.Sprintf("Fig.3 %s DRAM power vs speedup (one ccNUMA domain)", cs.Name),
			"speedup", "W")
		baseTable := report.NewTable(
			fmt.Sprintf("Fig.3 %s zero-core baseline extrapolation (paper: %s ~%.0f W)",
				cs.Name, cs.Name, cs.CPU.BasePowerPerSocket),
			"benchmark", "extrapolated baseline W")
		var chipSeries, dramSeries []report.Series
		for _, name := range bench.Names() {
			res := domSweeps[name]
			pts := analysis.Points(res)
			sp := analysis.Speedup(pts)
			chip := make([]float64, len(res))
			dram := make([]float64, len(res))
			cores := make([]float64, len(res))
			for i, r := range res {
				chip[i] = r.Usage.SocketChipPower[0]
				dram[i] = r.Usage.DomainDRAMPower[0]
				cores[i] = float64(r.Usage.Ranks)
			}
			chipPlot.Add(name, sp, chip)
			dramPlot.Add(name, sp, dram)
			chipSeries = append(chipSeries, report.Series{Name: name, X: sp, Y: chip})
			dramSeries = append(dramSeries, report.Series{Name: name, X: sp, Y: dram})
			baseTable.AddRow(name, fmt.Sprintf("%.0f",
				analysis.BaselinePowerExtrapolation(cores, chip)))
		}
		if err := chipPlot.Write(ctx.out()); err != nil {
			return err
		}
		if err := dramPlot.Write(ctx.out()); err != nil {
			return err
		}
		if err := baseTable.Write(ctx.out()); err != nil {
			return err
		}
		if err := ctx.saveSeriesCSV(fmt.Sprintf("fig3_chip_domain_%s.csv", cs.Name), "speedup", chipSeries); err != nil {
			return err
		}
		if err := ctx.saveSeriesCSV(fmt.Sprintf("fig3_dram_domain_%s.csv", cs.Name), "speedup", dramSeries); err != nil {
			return err
		}
		if err := ctx.saveCSV(fmt.Sprintf("fig3_baseline_%s.csv", cs.Name), baseTable); err != nil {
			return err
		}

		// (b, d): node-level chip power vs processes.
		sweeps, err := ctx.nodeSweepAll(cs)
		if err != nil {
			return err
		}
		nodePlot := report.NewPlot(
			fmt.Sprintf("Fig.3 %s node chip power vs processes", cs.Name),
			"processes", "W")
		var nodeSeries []report.Series
		for _, name := range bench.Names() {
			res := sweeps[name]
			xs := make([]float64, len(res))
			ys := make([]float64, len(res))
			for i, r := range res {
				xs[i] = float64(r.Usage.Ranks)
				ys[i] = r.Usage.ChipPower()
			}
			nodePlot.Add(name, xs, ys)
			nodeSeries = append(nodeSeries, report.Series{Name: name, X: xs, Y: ys})
		}
		if err := nodePlot.Write(ctx.out()); err != nil {
			return err
		}
		if err := ctx.saveSeriesCSV(fmt.Sprintf("fig3_chip_node_%s.csv", cs.Name), "ranks", nodeSeries); err != nil {
			return err
		}
	}
	return nil
}

// Fig4 runs the Fig. 4 experiment.
func Fig4(ctx *Context) error { return ctx.runPlan(domainAndNodeScenario, renderFig4) }

// renderFig4 renders the energy Z-plots (a, b) and node total energy (c).
func renderFig4(ctx *Context) error {
	clusters, err := ctx.clusterSpecs()
	if err != nil {
		return err
	}
	for _, cs := range clusters {
		domPts := ctx.domainPoints(cs)
		domSweeps, err := ctx.sweepAll(cs, bench.Tiny, domPts)
		if err != nil {
			return err
		}
		zPlot := report.NewPlot(
			fmt.Sprintf("Fig.4 %s Z-plot: chip energy vs speedup (one domain)", cs.Name),
			"speedup", "J")
		minTable := report.NewTable(
			fmt.Sprintf("Fig.4 %s: energy and EDP minima (race-to-idle check)", cs.Name),
			"benchmark", "ranks at min E", "ranks at min EDP")
		var zSeries []report.Series
		for _, name := range bench.Names() {
			res := domSweeps[name]
			z := analysis.ZPlot(analysis.Points(res))
			xs := make([]float64, len(z))
			ys := make([]float64, len(z))
			for i, p := range z {
				xs[i] = p.Speedup
				ys[i] = p.Energy
			}
			zPlot.Add(name, xs, ys)
			zSeries = append(zSeries, report.Series{Name: name, X: xs, Y: ys})
			minTable.AddRow(name,
				fmt.Sprintf("%.0f", z[analysis.MinEnergyPoint(z)].Ranks),
				fmt.Sprintf("%.0f", z[analysis.MinEDPPoint(z)].Ranks))
		}
		if err := zPlot.Write(ctx.out()); err != nil {
			return err
		}
		if err := minTable.Write(ctx.out()); err != nil {
			return err
		}
		if err := ctx.saveSeriesCSV(fmt.Sprintf("fig4_zplot_%s.csv", cs.Name), "speedup", zSeries); err != nil {
			return err
		}
		if err := ctx.saveCSV(fmt.Sprintf("fig4_minima_%s.csv", cs.Name), minTable); err != nil {
			return err
		}

		// (c): node total energy vs processes.
		sweeps, err := ctx.nodeSweepAll(cs)
		if err != nil {
			return err
		}
		ePlot := report.NewPlot(
			fmt.Sprintf("Fig.4 %s total energy vs processes (node)", cs.Name),
			"processes", "J")
		var eSeries []report.Series
		for _, name := range bench.Names() {
			res := sweeps[name]
			xs := make([]float64, len(res))
			ys := make([]float64, len(res))
			for i, r := range res {
				xs[i] = float64(r.Usage.Ranks)
				ys[i] = r.Usage.TotalEnergy()
			}
			ePlot.Add(name, xs, ys)
			eSeries = append(eSeries, report.Series{Name: name, X: xs, Y: ys})
		}
		if err := ePlot.Write(ctx.out()); err != nil {
			return err
		}
		if err := ctx.saveSeriesCSV(fmt.Sprintf("fig4_energy_node_%s.csv", cs.Name), "ranks", eSeries); err != nil {
			return err
		}
	}
	return nil
}
