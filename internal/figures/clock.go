package figures

import (
	"fmt"

	"github.com/spechpc/spechpc-sim/internal/analysis"
	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/report"
	"github.com/spechpc/spechpc-sim/internal/scenario"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/units"
)

// clockKernels picks the frequency study's contrast pair: the paper's
// strongly memory-bound CG solver (pot3d) against its hottest
// compute-bound code (sph-exa), falling back to the first kernel of each
// class when a reduced registry is in play.
func clockKernels() (memBound, computeBound string) {
	memB, nonMemB := splitByMemoryBound()
	pick := func(want string, pool []string) string {
		for _, n := range pool {
			if n == want {
				return n
			}
		}
		if len(pool) > 0 {
			return pool[0]
		}
		return ""
	}
	return pick("pot3d", memB), pick("sph-exa", nonMemB)
}

// clockLadder returns the frequency sweep points for a cluster; Quick
// mode keeps only the endpoints and the midpoint of the DVFS ladder.
// Delegates to the scenario axis resolver so the figclock plan and this
// renderer can never disagree about the points.
func (ctx *Context) clockLadder(cs *machine.ClusterSpec) []float64 {
	return scenario.ClockLadder(cs, ctx.Quick)
}

// FigEnergyClock is the DVFS frequency study: each contrast kernel runs
// on one ccNUMA domain across the cluster's clock ladder, producing the
// Z-plot-style wall-time-vs-energy curve per kernel, a per-point table
// (clock, wall, energy, energy per flop, EDP), and an
// energy-optimal-frequency summary across clusters. Memory-bound kernels
// barely slow down at reduced clocks (flat wall time, falling dynamic
// power), while compute-bound kernels pay wall time — and, with a 40-50%
// idle floor, baseline energy — for every lost MHz.
func FigEnergyClock(ctx *Context) error {
	return ctx.runPlan(figclockScenario, renderFigEnergyClock)
}

// renderFigEnergyClock renders the frequency study from the warm memo.
func renderFigEnergyClock(ctx *Context) error {
	clusters, err := ctx.clusterSpecs()
	if err != nil {
		return err
	}
	memName, compName := clockKernels()
	kernels := []struct{ name, class string }{
		{memName, "memory-bound"},
		{compName, "compute-bound"},
	}
	optTable := report.NewTable(
		"Frequency study: energy-optimal operating points (one ccNUMA domain, tiny)",
		"cluster", "kernel", "class", "clock at min E", "clock at min EDP",
		"E saved vs max clock %", "wall penalty at min E %")
	for _, cs := range clusters {
		ladder := ctx.clockLadder(cs)
		if len(ladder) == 0 {
			if _, err := fmt.Fprintf(ctx.out(),
				"frequency study skipped on %s: no DVFS ladder\n", cs.Name); err != nil {
				return err
			}
			continue
		}
		ranks := cs.CPU.CoresPerDomain()
		zPlot := report.NewPlot(
			fmt.Sprintf("Frequency study %s: wall time vs energy across the clock ladder", cs.Name),
			"wall s", "J")
		ptsTable := report.NewTable(
			fmt.Sprintf("Frequency study %s: per-clock metrics (%d ranks)", cs.Name, ranks),
			"kernel", "clock", "wall", "energy", "J/Gflop", "EDP Js")
		var zSeries []report.Series
		for _, k := range kernels {
			if k.name == "" {
				continue
			}
			results, err := ctx.engine().FrequencySweep(spec.RunSpec{
				Benchmark: k.name,
				Class:     bench.Tiny,
				Cluster:   cs,
				Ranks:     ranks,
				Options:   bench.Options{SimSteps: ctx.steps()},
			}, ladder)
			if err != nil {
				return fmt.Errorf("frequency sweep %s on %s: %w", k.name, cs.Name, err)
			}
			pts := analysis.ClockPoints(results)
			xs := make([]float64, len(pts))
			ys := make([]float64, len(pts))
			for i, p := range pts {
				xs[i] = p.Wall
				ys[i] = p.Energy
				ptsTable.AddRow(k.name,
					units.Frequency(p.ClockHz),
					units.Seconds(p.Wall),
					units.Energy(p.Energy),
					fmt.Sprintf("%.2f", p.EnergyPerFlop*1e9),
					fmt.Sprintf("%.3g", p.EDP))
			}
			zPlot.Add(k.name, xs, ys)
			zSeries = append(zSeries, report.Series{Name: k.name, X: xs, Y: ys})

			minE := pts[analysis.MinEnergyClock(pts)]
			minEDP := pts[analysis.MinEDPClock(pts)]
			max := pts[len(pts)-1] // ladder order: the last point is the fastest clock
			optTable.AddRow(cs.Name, k.name, k.class,
				units.Frequency(minE.ClockHz),
				units.Frequency(minEDP.ClockHz),
				fmt.Sprintf("%.1f", 100*(1-minE.Energy/max.Energy)),
				fmt.Sprintf("%.1f", 100*(minE.Wall/max.Wall-1)))
		}
		if err := zPlot.Write(ctx.out()); err != nil {
			return err
		}
		if err := ptsTable.Write(ctx.out()); err != nil {
			return err
		}
		if err := ctx.saveSeriesCSV(
			fmt.Sprintf("figclock_zplot_%s.csv", cs.Name), "wall_s", zSeries); err != nil {
			return err
		}
		if err := ctx.saveCSV(fmt.Sprintf("figclock_points_%s.csv", cs.Name), ptsTable); err != nil {
			return err
		}
	}
	if err := optTable.Write(ctx.out()); err != nil {
		return err
	}
	return ctx.saveCSV("figclock_optimal.csv", optTable)
}
