package figures

import (
	"strings"
	"testing"
)

// TestScenarioPlansCoverRenders pins the planner contract of every
// built-in experiment: after warming the experiment's declarative
// scenario, its renderer runs entirely from the engine memo — zero fresh
// simulations. A failure means the scenario definition in scenarios.go
// and the renderer have drifted apart. One context is shared across
// experiments (exactly like a cmd/figures run), so overlapping plans pay
// for each unique job once.
func TestScenarioPlansCoverRenders(t *testing.T) {
	ctx, _, _ := quickCtx(t)
	for _, e := range All() {
		if e.Scenario == nil {
			continue // table-only experiment, no simulations
		}
		sc := e.Scenario(ctx)
		if sc == nil {
			t.Fatalf("%s: scenario plan is nil for a simulating experiment", e.ID)
		}
		jobs, err := ctx.planner().Expand(sc)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(jobs) == 0 {
			t.Fatalf("%s: scenario plan expands to no jobs", e.ID)
		}
		if err := ctx.planner().Warm(sc); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		warmed := ctx.Engine.Stats()
		if err := e.Run(ctx); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		final := ctx.Engine.Stats()
		if final.Misses != warmed.Misses {
			t.Errorf("%s: renderer simulated %d jobs outside the scenario plan",
				e.ID, final.Misses-warmed.Misses)
		}
	}
	if ctx.Engine.Stats().Misses == 0 {
		t.Fatal("no experiment simulated anything")
	}
}

// TestWarmRenderOutputIdentical checks routing an experiment through the
// scenario planner changes nothing about its artifact: rendering straight
// from a cold engine and running warm-then-render produce byte-identical
// output. A single-cluster context keeps the double rendering cheap;
// figclock covers the clock axis and fig2 the pinned inset jobs.
func TestWarmRenderOutputIdentical(t *testing.T) {
	cases := []struct {
		id     string
		render func(*Context) error
		full   func(*Context) error
	}{
		{"fig2", renderFig2, Fig2}, // includes the pinned inset jobs
		{"figclock", renderFigEnergyClock, FigEnergyClock},
	}
	for _, c := range cases {
		c := c
		t.Run(c.id, func(t *testing.T) {
			direct, directOut, _ := quickCtx(t)
			direct.Clusters = []string{"ClusterA"}
			if err := c.render(direct); err != nil {
				t.Fatal(err)
			}
			planned, plannedOut, _ := quickCtx(t)
			planned.Clusters = []string{"ClusterA"}
			if err := c.full(planned); err != nil {
				t.Fatal(err)
			}
			if directOut.String() != plannedOut.String() {
				t.Errorf("scenario-planned output differs from direct rendering")
			}
		})
	}
}

// TestExperimentScenariosHonorContextClusters checks the default-cluster
// plumbing: a single-cluster context expands plans against that cluster
// only (except experiments pinned to the paper systems).
func TestExperimentScenariosHonorContextClusters(t *testing.T) {
	ctx, _, _ := quickCtx(t)
	ctx.Clusters = []string{"ClusterB"}
	sc := fig1Scenario(ctx)
	jobs, err := ctx.planner().Expand(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Cluster.Name != "ClusterB" {
			t.Fatalf("fig1 plan includes %s under a ClusterB-only context", j.Cluster.Name)
		}
	}
	// The scaling-case table always compares both paper systems.
	seen := map[string]bool{}
	jobs, err = ctx.planner().Expand(casesScenario(ctx))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		seen[j.Cluster.Name] = true
	}
	if !seen["ClusterA"] || !seen["ClusterB"] {
		t.Errorf("cases plan covers %v, want both paper clusters", seen)
	}
}

// TestExperimentListStructure keeps the -only ids stable and every
// simulating experiment backed by a scenario definition.
func TestExperimentListStructure(t *testing.T) {
	tableOnly := map[string]bool{"table1": true, "table2": true, "table3": true}
	for _, e := range All() {
		if tableOnly[e.ID] {
			if e.Scenario != nil {
				t.Errorf("%s is table-only but has a scenario plan", e.ID)
			}
			continue
		}
		if e.Scenario == nil {
			t.Errorf("simulating experiment %s has no scenario definition", e.ID)
		}
		if strings.Contains(e.ID, " ") {
			t.Errorf("experiment id %q has spaces", e.ID)
		}
	}
}
