package figures

import (
	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/scenario"
)

// This file holds the declarative job plans of the built-in experiments:
// which benchmarks run on which clusters over which rank and clock axes.
// The renderers in node.go/multinode.go/clock.go consume exactly these
// jobs from the warm engine memo (pinned by TestScenarioPlansCoverRenders),
// so the experiment-description logic lives here as data while the
// paper-faithful presentation stays bespoke Go.
//
// Scenario funcs return nil when there is nothing to plan (for example a
// resolution error); the renderer then reports the failure with its own
// experiment context.

// nodeSweepScenario is the Sect. 4 workhorse: every kernel over the
// node-level rank ladder (tiny suite) on the context clusters. Fig. 1,
// the efficiency/acceleration tables, and parts of Fig. 2-4 all consume
// this one sweep.
func nodeSweepScenario(ctx *Context) *scenario.Scenario {
	return &scenario.Scenario{
		Name: "node-sweep",
		Sweeps: []scenario.Sweep{{
			Class:  bench.Tiny,
			Points: scenario.Points{Kind: scenario.PointsNode},
		}},
	}
}

// fig1Scenario: node-level speedup and DP/AVX-DP performance.
func fig1Scenario(ctx *Context) *scenario.Scenario {
	sc := nodeSweepScenario(ctx)
	sc.Name = "fig1"
	return sc
}

// simdScenario: vectorization ratios, measured at 4 ranks on the paper's
// Ice Lake system regardless of the context cluster selection.
func simdScenario(ctx *Context) *scenario.Scenario {
	return &scenario.Scenario{
		Name: "simd",
		Sweeps: []scenario.Sweep{{
			Clusters: []string{"ClusterA"},
			Class:    bench.Tiny,
			Points:   scenario.Points{Kind: scenario.PointsList, List: []int{4}},
		}},
	}
}

// fig2Scenario: the node sweep on the context clusters, the cache
// bandwidth panel pinned to ClusterA, and the two ITAC-style inset jobs
// (minisweep serialization at 59 ranks, lbm straggler at 71).
func fig2Scenario(ctx *Context) *scenario.Scenario {
	return &scenario.Scenario{
		Name: "fig2",
		Sweeps: []scenario.Sweep{
			{
				Class:  bench.Tiny,
				Points: scenario.Points{Kind: scenario.PointsNode},
			},
			{
				Clusters: []string{"ClusterA"},
				Class:    bench.Tiny,
				Points:   scenario.Points{Kind: scenario.PointsNode},
			},
		},
		Jobs: []scenario.Job{
			{Benchmark: "minisweep", Cluster: "ClusterA", Class: bench.Tiny, Ranks: 59, SimSteps: 1},
			{Benchmark: "lbm", Cluster: "ClusterA", Class: bench.Tiny, Ranks: 71, SimSteps: 2},
		},
	}
}

// domainAndNodeScenario: the within-domain sweep (power/energy vs
// speedup on one ccNUMA domain) plus the node sweep — Fig. 3 and Fig. 4
// share it.
func domainAndNodeScenario(ctx *Context) *scenario.Scenario {
	return &scenario.Scenario{
		Name: "domain-and-node",
		Sweeps: []scenario.Sweep{
			{
				Class:  bench.Tiny,
				Points: scenario.Points{Kind: scenario.PointsDomain},
			},
			{
				Class:  bench.Tiny,
				Points: scenario.Points{Kind: scenario.PointsNode},
			},
		},
	}
}

// multiNodeScenario: every kernel over full-node rank counts (small
// suite) on the context clusters — Fig. 5 and Fig. 6.
func multiNodeScenario(ctx *Context) *scenario.Scenario {
	return &scenario.Scenario{
		Name: "multi-node",
		Sweeps: []scenario.Sweep{{
			Class:  bench.Small,
			Points: scenario.Points{Kind: scenario.PointsMultiNode},
		}},
	}
}

// casesScenario: the scaling-case classification compares against the
// paper's published table, so it always runs both paper systems.
func casesScenario(ctx *Context) *scenario.Scenario {
	return &scenario.Scenario{
		Name: "cases",
		Sweeps: []scenario.Sweep{{
			Clusters: []string{"ClusterA", "ClusterB"},
			Class:    bench.Small,
			Points:   scenario.Points{Kind: scenario.PointsMultiNode},
		}},
	}
}

// figclockScenario: the frequency study's contrast pair on one ccNUMA
// domain across each cluster's DVFS ladder. Clusters without a ladder
// are skipped here exactly as the renderer skips them.
func figclockScenario(ctx *Context) *scenario.Scenario {
	clusters, err := ctx.clusterSpecs()
	if err != nil {
		return nil // the renderer reports the resolution failure
	}
	memName, compName := clockKernels()
	var kernels []string
	for _, n := range []string{memName, compName} {
		if n != "" {
			kernels = append(kernels, n)
		}
	}
	if len(kernels) == 0 {
		return nil
	}
	sc := &scenario.Scenario{Name: "figclock"}
	for _, cs := range clusters {
		if len(ctx.clockLadder(cs)) == 0 {
			continue
		}
		sc.Sweeps = append(sc.Sweeps, scenario.Sweep{
			Benchmarks: kernels,
			Clusters:   []string{cs.Name},
			Class:      bench.Tiny,
			Points:     scenario.Points{Kind: scenario.PointsOneDomain},
			Clocks:     scenario.Clocks{Ladder: true},
		})
	}
	if len(sc.Sweeps) == 0 {
		return nil
	}
	return sc
}
