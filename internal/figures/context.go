// Package figures regenerates every table and figure of the paper's
// evaluation from simulated runs: node-level scaling, vectorization,
// bandwidth/volume, power, energy (Sect. 4, tiny suite) and multi-node
// scaling, power, and energy (Sect. 5, small suite).
//
// Each experiment is a built-in scenario: its job plan (benchmarks,
// clusters, rank/clock axes) is a declarative scenario.Scenario value in
// scenarios.go, and running an experiment first warms the campaign
// engine with the whole plan through the shared scenario planner, then
// renders the paper's bespoke tables/plots from the memoized results.
// Tables and ASCII plots go to the context writer, CSV files into the
// output directory. cmd/figures is the command-line front end; the
// root-level benchmark harness drives the same functions.
//
// All simulations go through one campaign engine per context, so jobs
// run in parallel on the host and every (benchmark, cluster, class,
// ranks) point is simulated at most once per process no matter how many
// experiments ask for it (Fig. 5, Fig. 6, and the scaling-case table all
// share the multi-node sweeps). Attach a persistent store to the engine
// and results survive the process too.
package figures

import (
	"context"
	"io"
	"os"
	"path/filepath"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite" // register all nine kernels
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/report"
	"github.com/spechpc/spechpc-sim/internal/scenario"
	"github.com/spechpc/spechpc-sim/internal/spec"
)

// Context carries experiment settings and the campaign engine all
// experiments share.
type Context struct {
	// OutDir receives CSV artifacts ("" = no files).
	OutDir string
	// Quick trades sweep resolution for speed (used by tests).
	Quick bool
	// W receives tables and ASCII plots (default os.Stdout).
	W io.Writer
	// Clusters names the registered clusters the experiments run on;
	// empty means the paper's two systems.
	Clusters []string
	// Engine executes and memoizes every simulation (nil = a fresh
	// engine sized to the host core count).
	Engine *campaign.Engine
}

// NewContext creates a context writing to stdout with a host-sized
// worker pool.
func NewContext(outDir string, quick bool) *Context {
	return NewContextParallel(outDir, quick, 0)
}

// NewContextParallel creates a context whose campaign engine runs at
// most workers simulations at once (<= 0 = host core count).
func NewContextParallel(outDir string, quick bool, workers int) *Context {
	return &Context{
		OutDir: outDir,
		Quick:  quick,
		W:      os.Stdout,
		Engine: campaign.New(workers),
	}
}

func (ctx *Context) out() io.Writer {
	if ctx.W == nil {
		return os.Stdout
	}
	return ctx.W
}

func (ctx *Context) engine() *campaign.Engine {
	if ctx.Engine == nil {
		ctx.Engine = campaign.New(0)
	}
	return ctx.Engine
}

// clusterSpecs resolves the context's cluster names through the machine
// registry.
func (ctx *Context) clusterSpecs() ([]*machine.ClusterSpec, error) {
	names := ctx.Clusters
	if len(names) == 0 {
		names = []string{"ClusterA", "ClusterB"}
	}
	out := make([]*machine.ClusterSpec, 0, len(names))
	for _, n := range names {
		cs, err := machine.Get(n)
		if err != nil {
			return nil, err
		}
		out = append(out, cs)
	}
	return out, nil
}

// paperCluster resolves one of the paper's named systems for artifacts
// pinned to a specific machine (insets, calibration tables).
func paperCluster(name string) (*machine.ClusterSpec, error) {
	return machine.Get(name)
}

// saveCSV writes a table as CSV into OutDir.
func (ctx *Context) saveCSV(name string, t *report.Table) error {
	if ctx.OutDir == "" {
		return nil
	}
	if err := os.MkdirAll(ctx.OutDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(ctx.OutDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

// saveSeriesCSV writes plot series as CSV into OutDir.
func (ctx *Context) saveSeriesCSV(name, xName string, series []report.Series) error {
	if ctx.OutDir == "" {
		return nil
	}
	if err := os.MkdirAll(ctx.OutDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(ctx.OutDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return report.SeriesCSV(f, xName, series)
}

// planner returns the shared scenario planner view of the context: same
// engine, same quick mode, same default clusters, so a scenario's
// expanded plan is exactly the job set the renderers request.
func (ctx *Context) planner() *scenario.Planner {
	return &scenario.Planner{
		Engine:          ctx.engine(),
		Quick:           ctx.Quick,
		DefaultClusters: ctx.Clusters,
	}
}

// runPlan executes one built-in experiment: submit the declarative
// scenario plan to the scheduler as one asynchronous batch, then render
// the paper artifact — the renderer's engine requests coalesce onto the
// in-flight jobs and block only on the results each table or plot
// actually needs, so rendering starts while the tail of the plan is
// still simulating. Per-job failures are surfaced by the renderer,
// which has the experiment context for error messages.
func (ctx *Context) runPlan(plan func(*Context) *scenario.Scenario, render func(*Context) error) error {
	if plan != nil {
		if sc := plan(ctx); sc != nil {
			if _, err := ctx.planner().Enqueue(context.Background(), sc); err != nil {
				return err
			}
		}
	}
	return render(ctx)
}

// nodePoints returns the node-level sweep points for a cluster.
func (ctx *Context) nodePoints(cs *machine.ClusterSpec) []int {
	return scenario.NodePoints(cs, ctx.Quick)
}

// domainPoints returns the within-domain sweep points (Fig. 3/4).
func (ctx *Context) domainPoints(cs *machine.ClusterSpec) []int {
	return scenario.DomainPoints(cs, ctx.Quick)
}

// multiPoints returns multi-node sweep points (Fig. 5/6).
func (ctx *Context) multiPoints(cs *machine.ClusterSpec) []int {
	return scenario.MultiNodePoints(cs, ctx.Quick)
}

// steps returns the per-kernel simulated step override.
func (ctx *Context) steps() int {
	if ctx.Quick {
		return 1
	}
	return 0 // kernel default
}

// sweep runs one benchmark sweep through the campaign engine.
func (ctx *Context) sweep(cs *machine.ClusterSpec, benchName string, class bench.Class, points []int) ([]spec.RunResult, error) {
	return ctx.engine().Sweep(spec.RunSpec{
		Benchmark: benchName,
		Class:     class,
		Cluster:   cs,
		Options:   bench.Options{SimSteps: ctx.steps()},
	}, points)
}

// sweepAll runs one class sweep for every registered benchmark as a
// single campaign batch, so jobs parallelize across kernels and rank
// counts alike.
func (ctx *Context) sweepAll(cs *machine.ClusterSpec, class bench.Class, points []int) (map[string][]spec.RunResult, error) {
	return ctx.engine().SweepAll(bench.Names(), spec.RunSpec{
		Class:   class,
		Cluster: cs,
		Options: bench.Options{SimSteps: ctx.steps()},
	}, points)
}

// run executes single jobs through the engine (memoized like sweeps).
func (ctx *Context) run(rs spec.RunSpec) (spec.RunResult, error) {
	out := ctx.engine().Run([]spec.RunSpec{rs})
	return out[0].Result, out[0].Err
}

// Experiment is one regenerable artifact of the paper.
type Experiment struct {
	// ID is the short name used with -only (e.g. "fig1", "table3").
	ID string
	// Title describes the paper artifact.
	Title string
	// Scenario returns the experiment's declarative job plan, executed
	// through the shared planner before rendering; nil for table-only
	// experiments that run no simulations.
	Scenario func(*Context) *scenario.Scenario
	// Run produces the artifact (warm the plan, then render).
	Run func(*Context) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: benchmark attributes and workload inputs", nil, Table1},
		{"table2", "Table 2: numerics and application domains", nil, Table2},
		{"table3", "Table 3: hardware and software attributes", nil, Table3},
		{"fig1", "Fig. 1: node-level speedup and (AVX-)DP performance", fig1Scenario, Fig1},
		{"eff", "Sect. 4.1.1: parallel efficiency table (domain baseline)", nodeSweepScenario, TextEfficiency},
		{"accel", "Sect. 4.1.2: ClusterB over ClusterA acceleration factors", nodeSweepScenario, TextAcceleration},
		{"simd", "Sect. 4.1.3: vectorization ratios", simdScenario, TextSIMD},
		{"fig2", "Fig. 2: bandwidths, data volumes, and ITAC-style insets", fig2Scenario, Fig2},
		{"fig3", "Fig. 3: CPU and DRAM power", domainAndNodeScenario, Fig3},
		{"fig4", "Fig. 4: energy Z-plots and total energy", domainAndNodeScenario, Fig4},
		{"fig5", "Fig. 5: multi-node scaling, bandwidth, volume (small suite)", multiNodeScenario, Fig5},
		{"cases", "Sect. 5.1.1: scaling-case classification", casesScenario, TextCases},
		{"fig6", "Fig. 6: multi-node power and energy", multiNodeScenario, Fig6},
		{"figclock", "Frequency study: energy/EDP across the DVFS clock ladder", figclockScenario, FigEnergyClock},
	}
}
