package figures

import (
	"fmt"

	"github.com/spechpc/spechpc-sim/internal/analysis"
	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/report"
	"github.com/spechpc/spechpc-sim/internal/spec"
)

// multiSweepAll runs the small-suite multi-node sweep for every benchmark
// as one parallel campaign batch. The engine memoizes every point, so
// Fig5, Fig6, and the scaling-case table simulate each (benchmark,
// cluster, ranks) job at most once per process.
func (ctx *Context) multiSweepAll(cs *machine.ClusterSpec) (map[string][]spec.RunResult, error) {
	out, err := ctx.sweepAll(cs, bench.Small, ctx.multiPoints(cs))
	if err != nil {
		return nil, fmt.Errorf("multi-node sweep on %s: %w", cs.Name, err)
	}
	return out, nil
}

// Fig5 runs the Fig. 5 experiment: warm the multi-node scenario plan,
// then render.
func Fig5(ctx *Context) error { return ctx.runPlan(multiNodeScenario, renderFig5) }

// renderFig5 renders multi-node speedup, per-node memory bandwidth, and
// aggregate memory volume for the small suite on both clusters.
func renderFig5(ctx *Context) error {
	clusters, err := ctx.clusterSpecs()
	if err != nil {
		return err
	}
	for _, cs := range clusters {
		sweeps, err := ctx.multiSweepAll(cs)
		if err != nil {
			return err
		}
		type metric struct {
			tag  string
			name string
			get  func(r spec.RunResult) float64
		}
		metrics := []metric{
			{"speedup", "speedup (1-node baseline)", nil}, // handled specially
			{"pernode_bw", "per-node memory bandwidth [GB/s]", func(r spec.RunResult) float64 {
				return r.Usage.MemBandwidth() / 1e9 / float64(r.Usage.Nodes)
			}},
			{"memvol", "aggregate memory data volume [GB]", func(r spec.RunResult) float64 {
				return r.Usage.BytesMem / 1e9
			}},
		}
		for _, m := range metrics {
			plot := report.NewPlot(
				fmt.Sprintf("Fig.5 %s %s (small suite)", cs.Name, m.name),
				"processes", m.name)
			var series []report.Series
			for _, name := range bench.Names() {
				res := sweeps[name]
				xs := make([]float64, len(res))
				ys := make([]float64, len(res))
				if m.get == nil {
					sp := analysis.Speedup(analysis.Points(res))
					for i, r := range res {
						xs[i] = float64(r.Usage.Ranks)
						ys[i] = sp[i]
					}
				} else {
					for i, r := range res {
						xs[i] = float64(r.Usage.Ranks)
						ys[i] = m.get(r)
					}
				}
				plot.Add(name, xs, ys)
				series = append(series, report.Series{Name: name, X: xs, Y: ys})
			}
			if err := plot.Write(ctx.out()); err != nil {
				return err
			}
			if err := ctx.saveSeriesCSV(
				fmt.Sprintf("fig5_%s_%s.csv", m.tag, cs.Name), "ranks", series); err != nil {
				return err
			}
		}
	}
	return nil
}

// TextCases runs the scaling-case experiment.
func TextCases(ctx *Context) error { return ctx.runPlan(casesScenario, renderTextCases) }

// renderTextCases reproduces the Sect. 5.1.1 scaling-case classification
// table.
func renderTextCases(ctx *Context) error {
	t := report.NewTable("Sect. 5.1.1: multi-node scaling cases",
		"benchmark", "ClusterA", "ClusterB", "paper A", "paper B")
	// The paper's published classification for comparison.
	paper := map[string][2]string{
		"pot3d":      {"A", "A"},
		"weather":    {"B", "A"},
		"tealeaf":    {"B", "B"},
		"hpgmgfv":    {"C", "C"},
		"cloverleaf": {"D", "D"},
		"soma":       {"poor", "poor"},
		"lbm":        {"poor", "poor"},
		"sph-exa":    {"poor", "poor"},
		"minisweep":  {"poor", "poor"},
	}
	a, err := paperCluster("ClusterA")
	if err != nil {
		return err
	}
	b, err := paperCluster("ClusterB")
	if err != nil {
		return err
	}
	sweepsA, err := ctx.multiSweepAll(a)
	if err != nil {
		return err
	}
	sweepsB, err := ctx.multiSweepAll(b)
	if err != nil {
		return err
	}
	for _, name := range bench.Names() {
		caseA := analysis.Classify(analysis.Points(sweepsA[name]))
		caseB := analysis.Classify(analysis.Points(sweepsB[name]))
		p := paper[name]
		t.AddRow(name, caseA.Short(), caseB.Short(), p[0], p[1])
	}
	if err := t.Write(ctx.out()); err != nil {
		return err
	}
	return ctx.saveCSV("text_cases.csv", t)
}

// Fig6 runs the Fig. 6 experiment.
func Fig6(ctx *Context) error { return ctx.runPlan(multiNodeScenario, renderFig6) }

// renderFig6 renders multi-node total power and energy for the small
// suite.
func renderFig6(ctx *Context) error {
	clusters, err := ctx.clusterSpecs()
	if err != nil {
		return err
	}
	for _, cs := range clusters {
		sweeps, err := ctx.multiSweepAll(cs)
		if err != nil {
			return err
		}
		pPlot := report.NewPlot(
			fmt.Sprintf("Fig.6 %s total power vs processes (small suite)", cs.Name),
			"processes", "W")
		ePlot := report.NewPlot(
			fmt.Sprintf("Fig.6 %s total energy vs processes (small suite)", cs.Name),
			"processes", "J")
		var pSeries, eSeries []report.Series
		for _, name := range bench.Names() {
			res := sweeps[name]
			xs := make([]float64, len(res))
			pw := make([]float64, len(res))
			en := make([]float64, len(res))
			for i, r := range res {
				xs[i] = float64(r.Usage.Ranks)
				pw[i] = r.Usage.TotalPower()
				en[i] = r.Usage.TotalEnergy()
			}
			pPlot.Add(name, xs, pw)
			ePlot.Add(name, xs, en)
			pSeries = append(pSeries, report.Series{Name: name, X: xs, Y: pw})
			eSeries = append(eSeries, report.Series{Name: name, X: xs, Y: en})
		}
		if err := pPlot.Write(ctx.out()); err != nil {
			return err
		}
		if err := ePlot.Write(ctx.out()); err != nil {
			return err
		}
		if err := ctx.saveSeriesCSV(fmt.Sprintf("fig6_power_%s.csv", cs.Name), "ranks", pSeries); err != nil {
			return err
		}
		if err := ctx.saveSeriesCSV(fmt.Sprintf("fig6_energy_%s.csv", cs.Name), "ranks", eSeries); err != nil {
			return err
		}
		// TDP utilisation summary (Sect. 5.2: 74-85% on A, 63-76% on B).
		full := sweeps["sph-exa"][len(sweeps["sph-exa"])-1]
		tdpTotal := float64(full.Usage.Nodes) * float64(cs.CPU.SocketsPerNode) * cs.CPU.TDPPerSocket
		t := report.NewTable(
			fmt.Sprintf("Sect. 5.2 %s: chip power at full scale vs TDP", cs.Name),
			"benchmark", "chip power kW", "% of TDP")
		for _, name := range bench.Names() {
			res := sweeps[name]
			last := res[len(res)-1]
			t.AddRow(name,
				fmt.Sprintf("%.2f", last.Usage.ChipPower()/1e3),
				fmt.Sprintf("%.0f", 100*last.Usage.ChipPower()/tdpTotal))
		}
		if err := t.Write(ctx.out()); err != nil {
			return err
		}
		if err := ctx.saveCSV(fmt.Sprintf("fig6_tdp_%s.csv", cs.Name), t); err != nil {
			return err
		}
	}
	return nil
}
