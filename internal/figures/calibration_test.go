package figures

import (
	"testing"

	"github.com/spechpc/spechpc-sim/internal/analysis"
	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	"github.com/spechpc/spechpc-sim/internal/machine"
)

// TestNodeEfficiencyBands pins the Sect. 4.1.1 parallel-efficiency table
// to tolerance bands around the paper's values. This is the calibration
// regression test: if the machine model or a kernel work model drifts,
// it fails here before the figures silently change shape.
func TestNodeEfficiencyBands(t *testing.T) {
	paper := map[string]struct {
		a, b   float64
		tolPct float64
	}{
		"lbm":        {130, 95, 15},
		"soma":       {93, 86, 10},
		"tealeaf":    {100, 100, 6},
		"cloverleaf": {98, 96, 7},
		"minisweep":  {73, 80, 15},
		"pot3d":      {100, 104, 9},
		"sph-exa":    {80, 79, 15},
		"hpgmgfv":    {95, 98, 9},
		"weather":    {95, 121, 8},
	}
	ctx := quietTestCtx(t)
	for _, cs := range []*machine.ClusterSpec{machine.ClusterA(), machine.ClusterB()} {
		sweeps, err := ctx.nodeSweepAll(cs)
		if err != nil {
			t.Fatal(err)
		}
		for name, want := range paper {
			eff, err := analysis.DomainEfficiency(analysis.Points(sweeps[name]),
				cs.CPU.CoresPerDomain(), cs.CPU.CoresPerNode())
			if err != nil {
				t.Fatal(err)
			}
			target := want.a
			if cs.Name == "ClusterB" {
				target = want.b
			}
			if eff < target-want.tolPct || eff > target+want.tolPct {
				t.Errorf("%s on %s: efficiency %.0f%%, paper %.0f%% (tol ±%.0f)",
					name, cs.Name, eff, target, want.tolPct)
			}
		}
	}
}

// TestAccelerationBands pins the Sect. 4.1.2 node B/A ratios.
func TestAccelerationBands(t *testing.T) {
	paper := map[string]struct {
		ratio float64
		tol   float64
	}{
		"lbm":        {1.21, 0.06},
		"soma":       {1.35, 0.12},
		"tealeaf":    {1.66, 0.12},
		"cloverleaf": {1.57, 0.08},
		"minisweep":  {1.39, 0.25}, // comm-bound share caps the model's ratio
		"pot3d":      {1.63, 0.12},
		"sph-exa":    {1.48, 0.20},
		"hpgmgfv":    {1.65, 0.12},
		"weather":    {2.03, 0.15},
	}
	ctx := quietTestCtx(t)
	a, b := machine.ClusterA(), machine.ClusterB()
	sweepsA, err := ctx.nodeSweepAll(a)
	if err != nil {
		t.Fatal(err)
	}
	sweepsB, err := ctx.nodeSweepAll(b)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range paper {
		ra := sweepsA[name][len(sweepsA[name])-1].Usage
		rb := sweepsB[name][len(sweepsB[name])-1].Usage
		got := analysis.AccelerationFactor(ra.Wall, rb.Wall)
		if got < want.ratio-want.tol || got > want.ratio+want.tol {
			t.Errorf("%s: B/A = %.2f, paper %.2f (tol ±%.2f)", name, got, want.ratio, want.tol)
		}
	}
}

// TestVectorizationExact pins the Sect. 4.1.3 ratios (the work models
// encode them directly, so the tolerance is tight).
func TestVectorizationExact(t *testing.T) {
	ctx := quietTestCtx(t)
	a := machine.ClusterA()
	for _, b := range bench.All() {
		res, err := ctx.sweep(a, b.Name, bench.Tiny, []int{4})
		if err != nil {
			t.Fatal(err)
		}
		got := 100 * res[0].Usage.SIMDRatio()
		if got < b.VectorPct-1 || got > b.VectorPct+1 {
			t.Errorf("%s: vectorization %.1f%%, paper %.1f%%", b.Name, got, b.VectorPct)
		}
	}
}

// TestPowerLevels pins the Sect. 4.2 power findings: hot codes near TDP,
// cool codes below, DRAM saturation levels.
func TestPowerLevels(t *testing.T) {
	ctx := quietTestCtx(t)
	a := machine.ClusterA()
	// sph-exa at a full socket: 98% of 250 W.
	res, err := ctx.sweep(a, "sph-exa", bench.Tiny, []int{36})
	if err != nil {
		t.Fatal(err)
	}
	if p := res[0].Usage.SocketChipPower[0]; p < 235 || p > 248 {
		t.Errorf("sph-exa socket power %.0f W, paper ~244", p)
	}
	// soma at a full socket: ~89% of TDP (222 W).
	res, err = ctx.sweep(a, "soma", bench.Tiny, []int{36})
	if err != nil {
		t.Fatal(err)
	}
	if p := res[0].Usage.SocketChipPower[0]; p < 205 || p > 235 {
		t.Errorf("soma socket power %.0f W, paper ~222", p)
	}
	// pot3d saturating one domain: ~16 W DRAM.
	res, err = ctx.sweep(a, "pot3d", bench.Tiny, []int{18})
	if err != nil {
		t.Fatal(err)
	}
	if p := res[0].Usage.DomainDRAMPower[0]; p < 14 || p > 18 {
		t.Errorf("pot3d domain DRAM power %.1f W, paper ~16", p)
	}
}

func quietTestCtx(t *testing.T) *Context {
	t.Helper()
	ctx := NewContext("", true)
	ctx.W = discardWriter{}
	return ctx
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
