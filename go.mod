module github.com/spechpc/spechpc-sim

go 1.24
