// Package spechpcsim_test is the benchmark harness that regenerates every
// table and figure of the paper (one testing.B benchmark per artifact)
// plus ablation benches for the design choices DESIGN.md calls out.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// Headline quantities are attached via b.ReportMetric, so the -bench
// output doubles as a compact paper-vs-measured summary; the full series
// (CSV + plots) come from cmd/figures.
package spechpcsim_test

import (
	"fmt"
	"io"
	"testing"

	"github.com/spechpc/spechpc-sim/internal/analysis"
	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite"
	"github.com/spechpc/spechpc-sim/internal/figures"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/mpi"
	"github.com/spechpc/spechpc-sim/internal/netsim"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/trace"
	"github.com/spechpc/spechpc-sim/internal/units"
)

// quietCtx returns a figures context that renders nowhere (benchmarks
// measure the regeneration work itself).
func quietCtx() *figures.Context {
	ctx := figures.NewContext("", true)
	ctx.W = io.Discard
	return ctx
}

// runExperiment benches one figures experiment.
func runExperiment(b *testing.B, fn func(*figures.Context) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := fn(quietCtx()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Workloads(b *testing.B) { runExperiment(b, figures.Table1) }
func BenchmarkTable2Numerics(b *testing.B)  { runExperiment(b, figures.Table2) }
func BenchmarkTable3Machines(b *testing.B)  { runExperiment(b, figures.Table3) }
func BenchmarkFig1NodeScaling(b *testing.B) { runExperiment(b, figures.Fig1) }
func BenchmarkFig2Bandwidth(b *testing.B)   { runExperiment(b, figures.Fig2) }
func BenchmarkFig3Power(b *testing.B)       { runExperiment(b, figures.Fig3) }
func BenchmarkFig4Energy(b *testing.B)      { runExperiment(b, figures.Fig4) }
func BenchmarkFig5MultiNode(b *testing.B)   { runExperiment(b, figures.Fig5) }

// BenchmarkFig5MultiNodeJob measures one Fig.5-class multi-node job —
// lbm/small across all sixteen ClusterA nodes — on the serial engine
// and on the conservative-lookahead partitioned engine (internal/
// sim/psim) at rising worker counts. Outputs are byte-identical at
// every worker count (pinned by TestParallelEngineParity), so the
// sub-benchmarks measure pure execution strategy: scripts/
// bench_compare.sh workers turns them into a scaling table, and the CI
// psim gate asserts workers=8 beats serial with benchgate -assert.
// Speedup has two components: smaller per-partition event heaps (an
// algorithmic win visible even single-threaded) and true parallelism
// across host cores (needs GOMAXPROCS > 1).
func BenchmarkFig5MultiNodeJob(b *testing.B) {
	cs := machine.MustGet("ClusterA")
	rs := spec.RunSpec{
		Benchmark: "lbm", Class: bench.Small,
		Cluster: cs, Ranks: cs.MaxNodes * cs.CPU.CoresPerNode(),
		Options: bench.Options{SimSteps: 1},
	}
	runMultiNodeJob(b, rs)
}

// BenchmarkPot3dMultiNodeJob is the compute-bound end of the kernel
// spectrum: pot3d's memory-bound PCG phases between collectives, as the
// counterpart to lbm's communication-heavy profile in the worker
// scaling table (scripts/bench_compare.sh workers).
func BenchmarkPot3dMultiNodeJob(b *testing.B) {
	cs := machine.MustGet("ClusterA")
	rs := spec.RunSpec{
		Benchmark: "pot3d", Class: bench.Small,
		Cluster: cs, Ranks: cs.MaxNodes * cs.CPU.CoresPerNode(),
		Options: bench.Options{SimSteps: 1},
	}
	runMultiNodeJob(b, rs)
}

// BenchmarkComputeHeavyMultiNodeJob measures the regime the adaptive
// earliest-output window targets: an under-populated cluster (eight
// ranks per node, standard practice for bandwidth-bound codes) running
// long compute stretches whose ranks drain memory/L3 flows at
// core-staggered rates. Every node carries the same byte-class
// multiset, so each interior flow-completion cluster lands on all
// sixteen partitions at once and the static engine pays a full
// multi-partition barrier for it; the adaptive oracle promises the
// phase end and swallows the whole stretch in one window —
// Result.Psim records the collapse (~1.6k static windows to ~100).
// This is the job the CI adaptive gate asserts on: workers=8 (adaptive,
// the default) vs static-workers=8 via benchgate -assert.
func BenchmarkComputeHeavyMultiNodeJob(b *testing.B) {
	cs := *machine.MustGet("ClusterA")
	cs.CPU.CoresPerSocket = 4
	cs.CPU.DomainsPerSocket = 1
	cpn := cs.CPU.CoresPerNode()
	body := func(r *mpi.Rank) {
		for step := 0; step < 2; step++ {
			for iter := 0; iter < 48; iter++ {
				r.Compute(machine.Phase{
					Name:        "stencil",
					FlopsScalar: 50 * units.M,
					BytesMem:    units.M * float64(1+r.ID()%cpn),
					BytesL3:     units.M * float64(1+r.ID()%cpn),
				})
			}
			r.Allreduce([]float64{1}, 8, mpi.OpSum)
		}
	}
	run := func(name string, workers int, static bool) {
		b.Run(name, func(b *testing.B) {
			cfg := mpi.Config{
				Cluster: &cs, Ranks: cs.MaxNodes * cpn,
				SimWorkers: workers, StaticWindows: static,
			}
			for i := 0; i < b.N; i++ {
				if _, err := mpi.Run(cfg, body); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("serial", 0, false)
	for _, w := range []int{2, 4, 8} {
		run(fmt.Sprintf("workers=%d", w), w, false)
	}
	run("static-workers=8", 8, true)
}

// runMultiNodeJob emits the shared sub-benchmark ladder: the serial
// engine, the partitioned engine at rising worker counts (adaptive
// windows, the default), and the saturated worker count pinned to
// static latency-floor windows as the adaptive baseline.
func runMultiNodeJob(b *testing.B, rs spec.RunSpec) {
	run := func(name string, workers int, static bool) {
		b.Run(name, func(b *testing.B) {
			job := rs
			job.SimWorkers = workers
			job.SimStaticWindows = static
			for i := 0; i < b.N; i++ {
				if _, err := spec.Run(job); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("serial", 0, false)
	for _, w := range []int{2, 4, 8} {
		run(fmt.Sprintf("workers=%d", w), w, false)
	}
	run("static-workers=8", 8, true)
}
func BenchmarkFig6PowerEnergy(b *testing.B)  { runExperiment(b, figures.Fig6) }
func BenchmarkTextScalingCases(b *testing.B) { runExperiment(b, figures.TextCases) }

// BenchmarkTextEfficiency regenerates the Sect. 4.1.1 efficiency table
// and reports lbm's superlinear ClusterA value (paper: 130%).
func BenchmarkTextEfficiency(b *testing.B) {
	var eff float64
	for i := 0; i < b.N; i++ {
		a := machine.ClusterA()
		results, err := spec.Sweep(spec.RunSpec{
			Benchmark: "lbm", Class: bench.Tiny, Cluster: a,
			Options: bench.Options{SimSteps: 1},
		}, []int{18, 72})
		if err != nil {
			b.Fatal(err)
		}
		eff, err = analysis.DomainEfficiency(analysis.Points(results), 18, 72)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(eff, "lbm-effA-%(paper:130)")
}

// BenchmarkTextAcceleration reports the weather B/A factor (paper: 2.03).
func BenchmarkTextAcceleration(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ra, err := spec.Run(spec.RunSpec{
			Benchmark: "weather", Class: bench.Tiny,
			Cluster: machine.ClusterA(), Ranks: 72,
			Options: bench.Options{SimSteps: 2},
		})
		if err != nil {
			b.Fatal(err)
		}
		rb, err := spec.Run(spec.RunSpec{
			Benchmark: "weather", Class: bench.Tiny,
			Cluster: machine.ClusterB(), Ranks: 104,
			Options: bench.Options{SimSteps: 2},
		})
		if err != nil {
			b.Fatal(err)
		}
		ratio = analysis.AccelerationFactor(ra.Usage.Wall, rb.Usage.Wall)
	}
	b.ReportMetric(ratio, "weather-B/A(paper:2.03)")
}

// BenchmarkTextSIMD reports pot3d's vectorization ratio (paper: 99.9%).
func BenchmarkTextSIMD(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := spec.Run(spec.RunSpec{
			Benchmark: "pot3d", Class: bench.Tiny,
			Cluster: machine.ClusterA(), Ranks: 4,
			Options: bench.Options{SimSteps: 2},
		})
		if err != nil {
			b.Fatal(err)
		}
		ratio = 100 * res.Usage.SIMDRatio()
	}
	b.ReportMetric(ratio, "pot3d-simd-%(paper:99.9)")
}

// BenchmarkFig2Timelines reproduces the minisweep serialization inset and
// reports the global MPI_Recv share at 59 ranks (paper: ~75%).
func BenchmarkFig2Timelines(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		res, err := spec.Run(spec.RunSpec{
			Benchmark: "minisweep", Class: bench.Tiny,
			Cluster: machine.ClusterA(), Ranks: 59,
			Options: bench.Options{SimSteps: 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		share = 100 * res.Trace.GlobalFraction(trace.KindRecv)
	}
	b.ReportMetric(share, "recv-share-%(paper:75)")
}

// BenchmarkAblationSweepChain isolates the root cause of minisweep's
// Sect. 4.1.5 pathology: per-rank throughput at 59 ranks (a degenerate
// 1x59 wavefront chain) against 64 ranks (an 8x8 grid). The eager
// threshold is also swept to show the effect is the data-dependency
// chain, not the transfer protocol: all-eager transport barely helps.
func BenchmarkAblationSweepChain(b *testing.B) {
	var chainPenalty, eagerGain float64
	for i := 0; i < b.N; i++ {
		run := func(ranks int, net netsim.Spec) float64 {
			res, err := spec.Run(spec.RunSpec{
				Benchmark: "minisweep", Class: bench.Tiny,
				Cluster: machine.ClusterA(), Ranks: ranks,
				Options: bench.Options{SimSteps: 1},
				Net:     net,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Usage.Wall
		}
		wall59 := run(59, netsim.Spec{})
		wall64 := run(64, netsim.Spec{})
		chainPenalty = wall59 / wall64
		eagerNet := netsim.HDR100()
		eagerNet.EagerThreshold = 1 << 40 // everything eager
		eagerGain = wall59 / run(59, eagerNet)
	}
	b.ReportMetric(chainPenalty, "chain-slowdown-59v64(paper:~4)")
	b.ReportMetric(eagerGain, "all-eager-speedup(~1)")
}

// BenchmarkAblationCacheModel removes the cache hierarchy (tiny L2/L3):
// weather's superlinear multi-node scaling on ClusterB must collapse to
// sublinear, isolating the cache-fit model as its cause (Case A).
func BenchmarkAblationCacheModel(b *testing.B) {
	var withCache, without float64
	for i := 0; i < b.N; i++ {
		run := func(cs *machine.ClusterSpec) float64 {
			r2, err := spec.Run(spec.RunSpec{
				Benchmark: "weather", Class: bench.Small, Cluster: cs,
				Ranks: 208, Options: bench.Options{SimSteps: 2},
			})
			if err != nil {
				b.Fatal(err)
			}
			r8, err := spec.Run(spec.RunSpec{
				Benchmark: "weather", Class: bench.Small, Cluster: cs,
				Ranks: 832, Options: bench.Options{SimSteps: 2},
			})
			if err != nil {
				b.Fatal(err)
			}
			return r2.Usage.Wall / r8.Usage.Wall // ideal = 4.0
		}
		withCache = run(machine.ClusterB())
		flat := machine.ClusterB()
		flat.CPU.L2PerCore = 64 * units.KiB
		flat.CPU.L3PerDomain = 256 * units.KiB
		without = run(flat)
	}
	b.ReportMetric(withCache, "speedup-with-cache(ideal:4)")
	b.ReportMetric(without, "speedup-without-cache")
}

// BenchmarkAblationBandwidthSharing removes the per-core memory bandwidth
// cap: a single core then saturates the whole domain, flattening
// tealeaf's in-domain speedup to ~1 — isolating the processor-sharing
// saturation model.
func BenchmarkAblationBandwidthSharing(b *testing.B) {
	var normal, uncapped float64
	for i := 0; i < b.N; i++ {
		run := func(cs *machine.ClusterSpec) float64 {
			r1, err := spec.Run(spec.RunSpec{
				Benchmark: "tealeaf", Class: bench.Tiny, Cluster: cs,
				Ranks: 1, Options: bench.Options{SimSteps: 4},
			})
			if err != nil {
				b.Fatal(err)
			}
			r18, err := spec.Run(spec.RunSpec{
				Benchmark: "tealeaf", Class: bench.Tiny, Cluster: cs,
				Ranks: 18, Options: bench.Options{SimSteps: 4},
			})
			if err != nil {
				b.Fatal(err)
			}
			return r1.Usage.Wall / r18.Usage.Wall
		}
		normal = run(machine.ClusterA())
		flat := machine.ClusterA()
		flat.CPU.MemPerCoreMax = flat.CPU.MemSaturatedPerDomain
		uncapped = run(flat)
	}
	// With the cap, speedup saturates at ~domain-bw/core-bw (~6, the
	// paper's saturation knee); without it a single core is limited only
	// by its in-core rate and the curve loses the saturation shape.
	b.ReportMetric(normal, "domain-speedup-capped(knee~6)")
	b.ReportMetric(uncapped, "domain-speedup-uncapped")
}

// BenchmarkAblationIdlePower resets the baseline power to the
// Sandy-Bridge-era 20% of TDP. On the modern baseline (~40% of TDP),
// concurrency throttling below the full domain saves almost no energy
// (the paper's race-to-idle conclusion); on the old baseline the same
// throttling saves substantially more.
func BenchmarkAblationIdlePower(b *testing.B) {
	var modernSave, oldSave float64
	for i := 0; i < b.N; i++ {
		// Savings of the best sub-domain operating point relative to the
		// full ccNUMA domain, in percent of the full-domain energy.
		throttleSavings := func(cs *machine.ClusterSpec) float64 {
			results, err := spec.Sweep(spec.RunSpec{
				Benchmark: "pot3d", Class: bench.Tiny, Cluster: cs,
				Options: bench.Options{SimSteps: 4},
			}, []int{1, 2, 4, 6, 9, 12, 18})
			if err != nil {
				b.Fatal(err)
			}
			z := analysis.ZPlot(analysis.Points(results))
			full := z[len(z)-1].Energy
			best := z[analysis.MinEnergyPoint(z)].Energy
			return 100 * (full - best) / full
		}
		modernSave = throttleSavings(machine.ClusterA())
		old := machine.ClusterA()
		old.CPU.BasePowerPerSocket = 0.2 * old.CPU.TDPPerSocket
		oldSave = throttleSavings(old)
	}
	b.ReportMetric(modernSave, "throttle-saving-%-modern(minor)")
	b.ReportMetric(oldSave, "throttle-saving-%-20pct-idle")
}
