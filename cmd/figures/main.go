// Command figures regenerates every table and figure of the paper
// "SPEChpc 2021 Benchmarks on Ice Lake and Sapphire Rapids Infiniband
// Clusters: A Performance and Energy Case Study" from the simulated
// clusters, writing ASCII renderings to stdout and CSV series to -out.
//
// Usage:
//
//	figures [-only fig1,fig5] [-out out] [-quick] [-parallel 8] [-clusters ClusterA,ClusterB] [-list]
//	figures -only fig5 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/spechpc/spechpc-sim/internal/figures"
	"github.com/spechpc/spechpc-sim/internal/profiling"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	out := flag.String("out", "out", "directory for CSV artifacts (empty = none)")
	quick := flag.Bool("quick", false, "reduced sweep resolution")
	list := flag.Bool("list", false, "list experiment ids and exit")
	parallel := flag.Int("parallel", runtime.NumCPU(), "campaign worker pool size")
	clusters := flag.String("clusters", "", "comma-separated registered cluster names (default: the paper's two)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stop, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	defer stop()

	all := figures.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	ctx := figures.NewContextParallel(*out, *quick, *parallel)
	if *clusters != "" {
		for _, n := range strings.Split(*clusters, ",") {
			if n = strings.TrimSpace(n); n != "" {
				ctx.Clusters = append(ctx.Clusters, n)
			}
		}
	}
	for _, e := range all {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		if err := e.Run(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s failed: %v\n", e.ID, err)
			stop() // os.Exit skips the deferred flush
			os.Exit(1)
		}
		fmt.Printf("=== %s done in %.1fs\n\n", e.ID, time.Since(start).Seconds())
	}
}
