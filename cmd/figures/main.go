// Command figures regenerates every table and figure of the paper
// "SPEChpc 2021 Benchmarks on Ice Lake and Sapphire Rapids Infiniband
// Clusters: A Performance and Energy Case Study" from the simulated
// clusters, writing ASCII renderings to stdout and CSV series to -out.
//
// With -scenario it instead executes a declarative scenario file (see
// docs/SCENARIOS.md) through the generic planner — user-defined studies
// without touching Go. With -cache-dir, simulation results persist in a
// content-addressed on-disk store shared across processes: a second run
// of the same experiments serves everything from cache (the store stats
// line on stderr reports fresh-sims=0).
//
// Usage:
//
//	figures [-only fig1,fig5] [-out out] [-quick] [-parallel 8] [-clusters ClusterA,ClusterB] [-list]
//	figures -scenario examples/custom_scenario/scenario.json -out out
//	figures -cache-dir ~/.cache/spechpc-sim [-only fig5]
//	figures -only fig5 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/figures"
	"github.com/spechpc/spechpc-sim/internal/profiling"
	"github.com/spechpc/spechpc-sim/internal/scenario"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	out := flag.String("out", "out", "directory for CSV artifacts (empty = none)")
	quick := flag.Bool("quick", false, "reduced sweep resolution")
	list := flag.Bool("list", false, "list experiment ids and exit")
	parallel := flag.Int("parallel", runtime.NumCPU(), "campaign worker pool size")
	clusters := flag.String("clusters", "", "comma-separated registered cluster names (default: the paper's two)")
	scenarioFile := flag.String("scenario", "", "execute a scenario file instead of the built-in experiments")
	cacheDir := flag.String("cache-dir", "", "persistent result store directory (cross-process cache)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	blockProfile := flag.String("blockprofile", "", "write a goroutine blocking profile to this file on exit")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
	simWorkers := flag.Int("sim-workers", 0,
		"intra-job parallel engine workers for multi-node jobs (0 = let the scheduler grant idle cores, -1 = always serial)")
	simStatic := flag.Bool("sim-static", false,
		"pin the parallel engine to static latency-floor windows (default: adaptive earliest-output widening; results are identical)")
	flag.Parse()

	stop, err := profiling.StartWith(profiling.Options{
		CPU: *cpuProfile, Mem: *memProfile, Block: *blockProfile, Mutex: *mutexProfile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	defer stop()

	all := figures.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	engine, err := campaign.NewWithCacheDir(*parallel, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		stop()
		os.Exit(1)
	}
	engine.Scheduler().SetSimWorkers(*simWorkers)
	engine.Scheduler().SetStaticWindows(*simStatic)

	var clusterList []string
	if *clusters != "" {
		for _, n := range strings.Split(*clusters, ",") {
			if n = strings.TrimSpace(n); n != "" {
				clusterList = append(clusterList, n)
			}
		}
	}

	if *scenarioFile != "" {
		sc, err := scenario.LoadFile(*scenarioFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			stop()
			os.Exit(1)
		}
		p := &scenario.Planner{Engine: engine, Quick: *quick, DefaultClusters: clusterList}
		start := time.Now()
		title := sc.Title
		if title == "" {
			title = "user scenario"
		}
		fmt.Printf("=== scenario %s: %s\n", sc.Name, title)
		if err := p.Execute(sc, os.Stdout, *out); err != nil {
			fmt.Fprintf(os.Stderr, "figures: scenario %s failed: %v\n", sc.Name, err)
			stop()
			os.Exit(1)
		}
		fmt.Printf("=== scenario %s done in %.1fs\n", sc.Name, time.Since(start).Seconds())
		reportStats(engine, *cacheDir)
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	ctx := &figures.Context{OutDir: *out, Quick: *quick, Engine: engine, Clusters: clusterList, W: os.Stdout}
	for _, e := range all {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		if err := e.Run(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s failed: %v\n", e.ID, err)
			stop() // os.Exit skips the deferred flush
			os.Exit(1)
		}
		fmt.Printf("=== %s done in %.1fs\n\n", e.ID, time.Since(start).Seconds())
	}
	reportStats(engine, *cacheDir)
}

// reportStats prints the campaign cache counters to stderr when a
// persistent store is in play; CI's warm-cache job asserts fresh-sims=0
// on a second pass over the same store.
func reportStats(engine *campaign.Engine, cacheDir string) {
	if cacheDir == "" {
		return
	}
	fmt.Fprintln(os.Stderr, engine.Stats())
}
