// Command spechpcd serves the simulated SPEChpc 2021 evaluation over
// HTTP: a long-lived daemon wrapping one asynchronous campaign
// scheduler, so any number of clients can submit benchmark jobs and
// declarative scenarios, poll their progress, and fetch results as JSON
// or CSV. Identical requests coalesce onto one simulation; with
// -cache-dir, results persist across restarts and repeated queries are
// served from disk without simulating (see docs/SERVICE.md for the API
// reference).
//
// Usage:
//
//	spechpcd -addr 127.0.0.1:8080 -cache-dir ~/.cache/spechpc-sim
//	spechpcd -addr 127.0.0.1:0 -quick          # ephemeral port, fast sweeps
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/api/v1/jobs -d '{"benchmark":"lbm","cluster":"A","ranks":72}'
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: in-flight HTTP
// requests get a drain window, queued-but-unstarted jobs are dropped,
// and simulations already running complete and persist before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/service"
	"github.com/spechpc/spechpc-sim/internal/surrogate"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "scheduler worker pool size")
	cacheDir := flag.String("cache-dir", "", "persistent result store directory (results survive restarts)")
	quick := flag.Bool("quick", false, "reduced scenario sweep resolution")
	clusters := flag.String("clusters", "", "comma-separated default clusters for scenario sweeps (default: the paper's two)")
	artifactDir := flag.String("artifacts", "", "scenario CSV artifact root (empty = per-run temp directories)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain window for in-flight HTTP requests")
	surro := flag.Bool("surrogate", false, "serve mode=fast queries from analytic surrogate models fitted over cached results")
	maxBound := flag.Float64("surrogate-max-bound", surrogate.DefaultMaxBound, "surrogate accuracy tolerance: queries whose error bound exceeds it simulate exactly")
	flag.Parse()

	var dirStore *campaign.DirStore
	var store campaign.Store
	if *cacheDir != "" {
		ds, err := campaign.NewDirStore(*cacheDir)
		if err != nil {
			fatal(err)
		}
		dirStore, store = ds, ds
	}
	sched := campaign.NewScheduler(*parallel, store)

	// With -surrogate, warm-start the fast tier from every result already
	// persisted, then keep learning: the scheduler feeds each fresh exact
	// simulation back into the index (campaign.Observer).
	var idx *surrogate.Index
	if *surro {
		idx = surrogate.NewIndex()
		idx.MaxBound = *maxBound
		if dirStore != nil {
			n, err := idx.FitStore(dirStore)
			if err != nil {
				fmt.Fprintln(os.Stderr, "spechpcd: surrogate warm-start:", err)
			}
			if _, err := idx.Load(dirStore.ModelsDir()); err != nil {
				fmt.Fprintln(os.Stderr, "spechpcd: surrogate model load:", err)
			}
			fitted, families := idx.Models()
			fmt.Printf("spechpcd: surrogate warm-start: %d cached results, %d/%d families fitted\n",
				n, fitted, families)
		}
	}

	var clusterList []string
	if *clusters != "" {
		for _, n := range strings.Split(*clusters, ",") {
			if n = strings.TrimSpace(n); n != "" {
				clusterList = append(clusterList, n)
			}
		}
	}
	svc := service.New(sched, service.Options{
		Quick:           *quick,
		DefaultClusters: clusterList,
		ArtifactDir:     *artifactDir,
		Surrogate:       idx,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The resolved address line is load-bearing: scripts/service_smoke.sh
	// starts the daemon on an ephemeral port and parses the port from it.
	fmt.Printf("spechpcd: listening on http://%s (workers=%d cache-dir=%q)\n",
		ln.Addr(), sched.Workers(), *cacheDir)

	srv := &http.Server{Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "spechpcd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "spechpcd: drain window expired:", err)
	}
	svc.Close()
	sched.Close() // drops queued jobs, waits for running simulations
	if idx != nil && dirStore != nil {
		// Persist the fitted models (own "m1-" prefix, models/ subdir) so
		// the next boot skips refitting; raw results stay authoritative.
		if n, err := idx.Save(dirStore.ModelsDir()); err != nil {
			fmt.Fprintln(os.Stderr, "spechpcd: surrogate model save:", err)
		} else {
			fmt.Fprintf(os.Stderr, "spechpcd: saved %d surrogate models\n", n)
		}
	}
	fmt.Fprintln(os.Stderr, sched.Stats())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spechpcd:", err)
	os.Exit(1)
}
