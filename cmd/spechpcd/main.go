// Command spechpcd serves the simulated SPEChpc 2021 evaluation over
// HTTP: a long-lived daemon wrapping one asynchronous campaign
// scheduler, so any number of clients can submit benchmark jobs and
// declarative scenarios, poll their progress, and fetch results as JSON
// or CSV. Identical requests coalesce onto one simulation; with
// -cache-dir, results persist across restarts and repeated queries are
// served from disk without simulating (see docs/SERVICE.md for the API
// reference).
//
// Usage:
//
//	spechpcd -addr 127.0.0.1:8080 -cache-dir ~/.cache/spechpc-sim
//	spechpcd -addr 127.0.0.1:0 -quick          # ephemeral port, fast sweeps
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/api/v1/jobs -d '{"benchmark":"lbm","cluster":"A","ranks":72}'
//
// A daemon can also serve as one tier of a fleet (docs/FLEET.md):
//
//	spechpcd -coordinator -cache-dir /srv/store     # front door: dispatches to workers
//	spechpcd -join http://coord:8080 -worker-id w1  # worker: simulates dispatched jobs
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: in-flight HTTP
// requests get a drain window, queued-but-unstarted jobs are dropped,
// and simulations already running complete and persist before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/fleet"
	"github.com/spechpc/spechpc-sim/internal/service"
	"github.com/spechpc/spechpc-sim/internal/surrogate"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "scheduler worker pool size")
	cacheDir := flag.String("cache-dir", "", "persistent result store directory (results survive restarts)")
	quick := flag.Bool("quick", false, "reduced scenario sweep resolution")
	clusters := flag.String("clusters", "", "comma-separated default clusters for scenario sweeps (default: the paper's two)")
	artifactDir := flag.String("artifacts", "", "scenario CSV artifact root (empty = per-run temp directories)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain window for in-flight HTTP requests")
	surro := flag.Bool("surrogate", false, "serve mode=fast queries from analytic surrogate models fitted over cached results")
	maxBound := flag.Float64("surrogate-max-bound", surrogate.DefaultMaxBound, "surrogate accuracy tolerance: queries whose error bound exceeds it simulate exactly")
	coordinator := flag.Bool("coordinator", false, "run as fleet coordinator: dispatch jobs to registered workers instead of simulating locally")
	join := flag.String("join", "", "run as fleet worker of the coordinator at this base URL (e.g. http://coord:8080)")
	advertise := flag.String("advertise", "", "worker: base URL the coordinator dispatches to (default http://<listen address>)")
	workerID := flag.String("worker-id", "", "worker: stable identity for rendezvous placement; keep it across restarts to keep the key share (default host:port of the advertised URL)")
	heartbeatEvery := flag.Duration("heartbeat", fleet.DefaultHeartbeatEvery, "worker: heartbeat period")
	suspectAfter := flag.Duration("suspect-after", fleet.DefaultSuspectAfter, "coordinator: heartbeat silence before a worker is suspect")
	deadAfter := flag.Duration("dead-after", fleet.DefaultDeadAfter, "coordinator: heartbeat silence before a worker is dead")
	rateLimit := flag.Float64("rate-limit", 0, "per-client submission rate in requests/second (0 = unlimited)")
	rateBurst := flag.Float64("rate-burst", 0, "per-client submission burst (default: the rate, min 1)")
	maxQueue := flag.Int("max-queue", 0, "shed submissions once the scheduler queue reaches this depth (0 = unbounded)")
	degraded := flag.Bool("degraded", false, "answer queue-saturated job submissions from the surrogate fast tier instead of shedding (requires -surrogate and -max-queue)")
	simWorkers := flag.Int("sim-workers", 0,
		"intra-job parallel engine workers for multi-node jobs (0 = grant idle cores when the queue is empty, -1 = always serial)")
	simStatic := flag.Bool("sim-static", false,
		"pin the parallel engine to static latency-floor windows (default: adaptive earliest-output widening; results are identical)")
	flag.Parse()

	if *coordinator && *join != "" {
		fatal(errors.New("-coordinator and -join are mutually exclusive: a process is either the front door or a worker"))
	}
	if *degraded && !*surro {
		fatal(errors.New("-degraded needs -surrogate: degraded mode answers from the surrogate fast tier"))
	}

	// Listen before wiring stores: a worker's default identity and
	// advertised URL come from the resolved listen address.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	role := "standalone"
	var selfWorker fleet.Worker
	if *join != "" {
		role = "worker"
		adv := *advertise
		if adv == "" {
			adv = "http://" + ln.Addr().String()
		}
		id := *workerID
		if id == "" {
			u, err := url.Parse(adv)
			if err != nil || u.Host == "" {
				fatal(fmt.Errorf("cannot derive -worker-id from -advertise %q: %v", adv, err))
			}
			id = u.Host
		}
		selfWorker = fleet.Worker{ID: id, URL: adv, Capacity: *parallel}
	}
	if *coordinator {
		role = "coordinator"
	}

	var dirStore *campaign.DirStore
	var store campaign.Store
	if *cacheDir != "" {
		ds, err := campaign.NewDirStore(*cacheDir)
		if err != nil {
			fatal(err)
		}
		dirStore, store = ds, ds
	}
	if *join != "" {
		// Workers publish every result to the coordinator's fleet-wide
		// store; a local cache dir becomes the warm tier in front of it.
		remote := &fleet.RemoteStore{Base: *join, WorkerID: selfWorker.ID}
		if dirStore != nil {
			store = &fleet.Tiered{Local: dirStore, Remote: remote}
		} else {
			store = remote
		}
	}
	sched := campaign.NewScheduler(*parallel, store)
	sched.SetSimWorkers(*simWorkers)
	sched.SetStaticWindows(*simStatic)

	// With -surrogate, warm-start the fast tier from every result already
	// persisted, then keep learning: the scheduler feeds each fresh exact
	// simulation back into the index (campaign.Observer).
	var idx *surrogate.Index
	if *surro {
		idx = surrogate.NewIndex()
		idx.MaxBound = *maxBound
		if dirStore != nil {
			n, err := idx.FitStore(dirStore)
			if err != nil {
				fmt.Fprintln(os.Stderr, "spechpcd: surrogate warm-start:", err)
			}
			if _, err := idx.Load(dirStore.ModelsDir()); err != nil {
				fmt.Fprintln(os.Stderr, "spechpcd: surrogate model load:", err)
			}
			fitted, families := idx.Models()
			fmt.Printf("spechpcd: surrogate warm-start: %d cached results, %d/%d families fitted\n",
				n, fitted, families)
		}
	}

	var clusterList []string
	if *clusters != "" {
		for _, n := range strings.Split(*clusters, ",") {
			if n = strings.TrimSpace(n); n != "" {
				clusterList = append(clusterList, n)
			}
		}
	}
	var coord *fleet.Coordinator
	if *coordinator {
		coord = fleet.NewCoordinator(fleet.NewRegistry(*suspectAfter, *deadAfter), nil)
	}
	svc := service.New(sched, service.Options{
		Quick:           *quick,
		DefaultClusters: clusterList,
		ArtifactDir:     *artifactDir,
		Surrogate:       idx,
		Fleet:           coord,
		Degraded:        *degraded,
		Admission: fleet.AdmissionConfig{
			RatePerClient: *rateLimit,
			Burst:         *rateBurst,
			MaxQueue:      *maxQueue,
		},
	})

	// The resolved address line is load-bearing: scripts/service_smoke.sh
	// and scripts/fleet_smoke.sh start daemons on ephemeral ports and
	// parse the address from its prefix.
	fmt.Printf("spechpcd: listening on http://%s (role=%s workers=%d cache-dir=%q)\n",
		ln.Addr(), role, sched.Workers(), *cacheDir)

	srv := &http.Server{Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *join != "" {
		// Membership loop: register, heartbeat, re-register if the
		// coordinator restarts. It never gives up — the coordinator's
		// suspect/dead thresholds decide how much silence matters.
		go fleet.Join(ctx, fleet.JoinConfig{
			Coordinator: *join,
			Self:        selfWorker,
			Every:       *heartbeatEvery,
		})
		fmt.Printf("spechpcd: joining fleet at %s as %s (advertising %s)\n",
			*join, selfWorker.ID, selfWorker.URL)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "spechpcd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "spechpcd: drain window expired:", err)
	}
	svc.Close()
	sched.Close() // drops queued jobs, waits for running simulations
	if idx != nil && dirStore != nil {
		// Persist the fitted models (own "m1-" prefix, models/ subdir) so
		// the next boot skips refitting; raw results stay authoritative.
		if n, err := idx.Save(dirStore.ModelsDir()); err != nil {
			fmt.Fprintln(os.Stderr, "spechpcd: surrogate model save:", err)
		} else {
			fmt.Fprintf(os.Stderr, "spechpcd: saved %d surrogate models\n", n)
		}
	}
	fmt.Fprintln(os.Stderr, sched.Stats())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spechpcd:", err)
	os.Exit(1)
}
