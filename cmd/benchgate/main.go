// Command benchgate is the statistical benchmark gate behind
// scripts/bench_compare.sh and the CI bench job. It compares two files
// of standard Go benchmark output (benchfmt — exactly what
// `go test -bench -count N` prints) and fails when a benchmark shows a
// statistically significant regression beyond the growth allowance,
// using the Mann-Whitney U test over the repeated samples (the
// benchstat methodology, implemented in internal/perfstat without
// external dependencies).
//
// Usage:
//
//	benchgate -old baseline.bench -new candidate.bench \
//	          [-metric ns/op] [-alpha 0.05] [-max-growth 20] [-min-count 5]
//	benchgate -summarize file.bench          # benchfmt -> flat JSON means
//	benchgate -assert file.bench -faster 'Fig5MultiNodeJob/workers=8' \
//	          -slower 'Fig5MultiNodeJob/serial' -min-speedup 1.25
//
// The -assert form gates a speedup claim within ONE benchfmt file: it
// fails unless the -faster benchmark beats the -slower one by at least
// -min-speedup on the metric's median, with the difference significant
// under the Mann-Whitney U test. CI uses it to require the parallel
// simulation engine to actually outrun the serial one.
//
// Exit status: 0 when the gate passes, 1 on regression (or too few
// samples with -min-count, or a failed -assert), 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/spechpc/spechpc-sim/internal/perfstat"
)

func main() {
	var (
		oldPath    = flag.String("old", "", "baseline benchfmt file")
		newPath    = flag.String("new", "", "candidate benchfmt file")
		metric     = flag.String("metric", "ns/op", "metric unit to gate on (ns/op, allocs/op, B/op, ...)")
		alpha      = flag.Float64("alpha", 0.05, "significance level for the Mann-Whitney U test")
		maxGrowth  = flag.Float64("max-growth", 20, "allowed metric growth in percent; significant shifts beyond this fail")
		minCount   = flag.Int("min-count", 0, "fail when either side of a compared benchmark has fewer samples (0 disables)")
		summarize  = flag.String("summarize", "", "print a benchfmt file as flat JSON of per-benchmark metric means and exit")
		assert     = flag.String("assert", "", "benchfmt file for a single-file speedup assertion (with -faster/-slower)")
		faster     = flag.String("faster", "", "assert mode: benchmark name (with or without Benchmark prefix) that must be faster")
		slower     = flag.String("slower", "", "assert mode: benchmark name (with or without Benchmark prefix) to beat")
		minSpeedup = flag.Float64("min-speedup", 1.0, "assert mode: required median speedup of -faster over -slower")
	)
	flag.Parse()

	if *summarize != "" {
		if err := printSummary(*summarize); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		return
	}
	if *assert != "" {
		os.Exit(assertFaster(*assert, *faster, *slower, *metric, *alpha, *minSpeedup, *minCount))
	}
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new benchfmt files are required (or -summarize)")
		flag.Usage()
		os.Exit(2)
	}

	oldSet, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	newSet, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	deltas := perfstat.Compare(oldSet, newSet, *metric, *alpha)
	if len(deltas) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmarks report %q on either side\n", *metric)
		os.Exit(2)
	}
	perfstat.FormatTable(os.Stdout, deltas, *metric, *alpha, *maxGrowth)

	status := 0
	for _, d := range deltas {
		if d.Regressed(*maxGrowth) {
			status = 1
		}
		if *minCount > 0 && !d.OldOnly && !d.NewOnly && (d.OldN < *minCount || d.NewN < *minCount) {
			fmt.Fprintf(os.Stderr, "benchgate: %s has %d/%d samples, need >= %d per side for a meaningful test\n",
				d.Name, d.OldN, d.NewN, *minCount)
			status = 1
		}
	}
	if status != 0 {
		fmt.Println("benchgate: FAIL")
	} else {
		fmt.Println("benchgate: OK")
	}
	os.Exit(status)
}

// assertFaster gates a speedup claim inside one benchfmt file: the
// faster benchmark's median metric must beat the slower one's by at
// least minSpeedup, and the two sample sets must differ significantly
// under the Mann-Whitney U test. Returns the process exit status.
func assertFaster(path, faster, slower, metric string, alpha, minSpeedup float64, minCount int) int {
	if faster == "" || slower == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -assert needs both -faster and -slower benchmark names")
		return 2
	}
	s, err := parseFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		return 2
	}
	fast, err := findValues(s, faster, metric)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		return 2
	}
	slow, err := findValues(s, slower, metric)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		return 2
	}
	if minCount > 0 && (len(fast) < minCount || len(slow) < minCount) {
		fmt.Fprintf(os.Stderr, "benchgate: %d/%d samples, need >= %d per side for a meaningful test\n",
			len(fast), len(slow), minCount)
		return 1
	}
	speedup := perfstat.Median(slow) / perfstat.Median(fast)
	p := perfstat.MannWhitneyU(fast, slow)
	fmt.Printf("benchgate: %s vs %s (%s): median speedup %.2fx (want >= %.2fx), p=%.4g (alpha %g)\n",
		faster, slower, metric, speedup, minSpeedup, p, alpha)
	if speedup < minSpeedup {
		fmt.Println("benchgate: FAIL (speedup below threshold)")
		return 1
	}
	if p >= alpha {
		fmt.Println("benchgate: FAIL (difference not statistically significant)")
		return 1
	}
	fmt.Println("benchgate: OK")
	return 0
}

// findValues returns the metric samples of the benchmark matching name
// (exact, or with the standard "Benchmark" prefix added).
func findValues(s *perfstat.Set, name, metric string) ([]float64, error) {
	for _, cand := range []string{name, "Benchmark" + name} {
		if vs := s.Values(cand, metric); len(vs) > 0 {
			return vs, nil
		}
	}
	return nil, fmt.Errorf("benchmark %q has no %q samples in the file", name, metric)
}

func parseFile(path string) (*perfstat.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := perfstat.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// printSummary renders a benchfmt file as the flat JSON shape the
// BENCH_* trajectory files use: one object per benchmark with the mean
// of each standard metric (keys ns_op / bytes_op / allocs_op, matching
// the pre-benchfmt records so trajectories stay diffable across PRs).
func printSummary(path string) error {
	s, err := parseFile(path)
	if err != nil {
		return err
	}
	jsonKey := map[string]string{"ns/op": "ns_op", "B/op": "bytes_op", "allocs/op": "allocs_op"}
	fmt.Println("{")
	for i, name := range s.Names {
		keys := []string{}
		for _, m := range []string{"ns/op", "B/op", "allocs/op"} {
			if len(s.Values(name, m)) > 0 {
				keys = append(keys, m)
			}
		}
		// Custom b.ReportMetric units ride along under their own names.
		for _, m := range s.Metrics(name) {
			if _, std := jsonKey[m]; !std {
				keys = append(keys, m)
			}
		}
		fmt.Printf("  %q: {", name)
		for j, m := range keys {
			k, ok := jsonKey[m]
			if !ok {
				k = m
			}
			if j > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%q: %.6g", k, perfstat.Mean(s.Values(name, m)))
		}
		if i < len(s.Names)-1 {
			fmt.Println("},")
		} else {
			fmt.Println("}")
		}
	}
	fmt.Println("}")
	return nil
}
