// Command spechpc runs a simulated SPEChpc 2021 benchmark on one of the
// registered clusters and reports SPEC-style verified results: runtime,
// performance, bandwidth, power, energy, and the MPI share. A
// comma-separated -ranks list runs a scaling sweep on the campaign
// worker pool instead of a single job; -clock pins the core clock to a
// point of the cluster's DVFS ladder, and -clock-sweep fans the job
// across clock points instead ("ladder" selects the full ladder).
//
// With -scenario it executes a declarative scenario file (see
// docs/SCENARIOS.md) through the generic planner; with -cache-dir,
// results persist in a content-addressed on-disk store shared across
// processes and commands (figures reads the same store).
//
// Usage:
//
//	spechpc -list
//	spechpc -clusters
//	spechpc -bench tealeaf -cluster A -ranks 72 [-class tiny] [-steps 8] [-trace]
//	spechpc -bench tealeaf -cluster A -ranks 1,2,4,9,18 -parallel 8
//	spechpc -bench pot3d -cluster A -ranks 18 -clock 1.6
//	spechpc -bench pot3d -cluster A -ranks 18 -clock-sweep ladder
//	spechpc -scenario examples/custom_scenario/scenario.json -out out
//	spechpc -bench lbm -cluster A -ranks 72 -cache-dir ~/.cache/spechpc-sim
//	spechpc -bench lbm -cluster A -ranks 72 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"github.com/spechpc/spechpc-sim/internal/analysis"
	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite"
	"github.com/spechpc/spechpc-sim/internal/campaign"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/profiling"
	"github.com/spechpc/spechpc-sim/internal/report"
	"github.com/spechpc/spechpc-sim/internal/scenario"
	"github.com/spechpc/spechpc-sim/internal/sim/psim"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/trace"
	"github.com/spechpc/spechpc-sim/internal/units"
)

func main() {
	list := flag.Bool("list", false, "list benchmarks and exit")
	listClusters := flag.Bool("clusters", false, "list registered clusters and exit")
	name := flag.String("bench", "", "benchmark name (see -list)")
	clusterFlag := flag.String("cluster", "A", "registered cluster name (see -clusters; A and B are aliases)")
	ranks := flag.String("ranks", "", "MPI ranks; a comma-separated list runs a sweep (default: one ccNUMA domain)")
	classFlag := flag.String("class", "tiny", "workload class: tiny or small")
	steps := flag.Int("steps", 0, "simulated steps (0 = kernel default)")
	doTrace := flag.Bool("trace", false, "print the per-state time breakdown")
	parallel := flag.Int("parallel", runtime.NumCPU(), "campaign worker pool size (drives sweeps)")
	clock := flag.Float64("clock", 0, "core clock in GHz (0 = the cluster's pinned base clock)")
	clockSweep := flag.String("clock-sweep", "",
		"frequency sweep: comma-separated GHz list, or \"ladder\" for the full DVFS ladder")
	scenarioFile := flag.String("scenario", "", "execute a scenario file through the generic planner")
	outDir := flag.String("out", "", "directory for scenario CSV artifacts (empty = none)")
	cacheDir := flag.String("cache-dir", "", "persistent result store directory (cross-process cache)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	blockProfile := flag.String("blockprofile", "", "write a goroutine blocking profile to this file on exit")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
	simWorkers := flag.Int("sim-workers", 0,
		"intra-job parallel engine workers for multi-node jobs (0 = let the scheduler grant idle cores, -1 = always serial)")
	simStatic := flag.Bool("sim-static", false,
		"pin the parallel engine to static latency-floor windows (default: adaptive earliest-output widening; results are identical)")
	verbose := flag.Bool("v", false, "print parallel-engine window statistics to stderr")
	flag.Parse()

	stop, err := profiling.StartWith(profiling.Options{
		CPU: *cpuProfile, Mem: *memProfile, Block: *blockProfile, Mutex: *mutexProfile,
	})
	if err != nil {
		fatal(err)
	}
	stopProfiling = stop
	defer stop()

	if *listClusters {
		fmt.Println("registered clusters:", strings.Join(machine.Names(), ", "))
		return
	}

	if *list {
		t := report.NewTable("SPEChpc 2021 benchmarks (simulated)",
			"ID", "Name", "Language", "LOC", "Collective", "Memory-bound", "Numerics")
		for _, b := range bench.All() {
			mb := ""
			if b.MemoryBound {
				mb = "yes"
			}
			t.AddRow(fmt.Sprintf("%02d", b.ID), b.Name, b.Language,
				fmt.Sprintf("%d", b.LOC), b.Collective, mb, b.Numerics)
		}
		if err := t.Write(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *scenarioFile != "" {
		sc, err := scenario.LoadFile(*scenarioFile)
		if err != nil {
			fatal(err)
		}
		engine := newEngine(*parallel, *cacheDir, *simWorkers, *simStatic)
		p := &scenario.Planner{Engine: engine}
		if err := p.Execute(sc, os.Stdout, *outDir); err != nil {
			fatal(err)
		}
		reportStats(engine, *cacheDir, *verbose)
		return
	}
	if *name == "" {
		fatal(fmt.Errorf("missing -bench (try -list)"))
	}

	cluster, err := machine.Get(*clusterFlag)
	if err != nil {
		fatal(err)
	}
	if *clock < 0 {
		fatal(fmt.Errorf("invalid -clock %g (want positive GHz, 0 = base clock)", *clock))
	}
	class := bench.Tiny
	if *classFlag == "small" {
		class = bench.Small
	}
	points, err := parseRanks(*ranks, cluster.CPU.CoresPerDomain())
	if err != nil {
		fatal(err)
	}

	engine := newEngine(*parallel, *cacheDir, *simWorkers, *simStatic)
	defer reportStats(engine, *cacheDir, *verbose)
	base := spec.RunSpec{
		Benchmark: *name,
		Class:     class,
		Cluster:   cluster,
		ClockHz:   *clock * 1e9,
		Options:   bench.Options{SimSteps: *steps},
	}
	if *clockSweep != "" {
		if len(points) > 1 {
			fatal(fmt.Errorf("-clock-sweep needs a single -ranks value, got %d", len(points)))
		}
		if *clock != 0 {
			fatal(fmt.Errorf("-clock and -clock-sweep are mutually exclusive"))
		}
		clocks, err := parseClocks(*clockSweep)
		if err != nil {
			fatal(err)
		}
		base.Ranks = points[0]
		base.ClockHz = 0
		if *doTrace {
			fmt.Fprintln(os.Stderr, "spechpc: -trace applies to single runs only; ignored for sweeps")
		}
		if err := runClockSweep(engine, base, clocks); err != nil {
			fatal(err)
		}
		return
	}
	if len(points) > 1 {
		if *doTrace {
			fmt.Fprintln(os.Stderr, "spechpc: -trace applies to single runs only; ignored for sweeps")
		}
		if err := runSweep(engine, base, points); err != nil {
			fatal(err)
		}
		return
	}

	base.Ranks = points[0]
	outs := engine.Run([]spec.RunSpec{base})
	if outs[0].Err != nil {
		fatal(outs[0].Err)
	}
	res := outs[0].Result

	u := res.Usage
	t := report.NewTable(
		fmt.Sprintf("%s / %s on %s, %d ranks (%d nodes)",
			*name, class, cluster.Name, u.Ranks, u.Nodes),
		"metric", "value")
	t.AddRow("verified", "yes (all checks passed)")
	t.AddRow("wall time (full workload)", units.Seconds(u.Wall))
	t.AddRow("performance", units.FlopRate(u.PerfFlops()))
	t.AddRow("AVX-DP performance", units.FlopRate(u.PerfFlopsSIMD()))
	t.AddRow("vectorization ratio", fmt.Sprintf("%.1f%%", 100*u.SIMDRatio()))
	t.AddRow("memory bandwidth", units.Bandwidth(u.MemBandwidth()))
	t.AddRow("memory data volume", units.BytesDecimal(u.BytesMem))
	t.AddRow("chip power", units.Power(u.ChipPower()))
	t.AddRow("DRAM power", units.Power(u.DRAMPower()))
	t.AddRow("total energy", units.Energy(u.TotalEnergy()))
	t.AddRow("energy-delay product", fmt.Sprintf("%.3g Js", u.EDP()))
	t.AddRow("MPI time share", fmt.Sprintf("%.1f%%", 100*u.MPIFraction()))
	for _, c := range res.Report.Checks {
		t.AddRow("check: "+c.Name, fmt.Sprintf("%.3g (ok)", c.Value))
	}
	if err := t.Write(os.Stdout); err != nil {
		fatal(err)
	}

	if *doTrace {
		tt := report.NewTable("Global time shares by state", "state", "share %")
		for _, k := range trace.Kinds() {
			f := res.Trace.GlobalFraction(k)
			if f > 0.0005 {
				tt.AddRow(k.String(), fmt.Sprintf("%.1f", 100*f))
			}
		}
		if err := tt.Write(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// parseRanks turns the -ranks flag into sweep points. Empty — or a
// single value <= 0, the historical int-flag default — selects one
// ccNUMA domain; list entries must be positive.
func parseRanks(s string, domainDefault int) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return []int{domainDefault}, nil
	}
	if n, err := strconv.Atoi(s); err == nil && n <= 0 {
		return []int{domainDefault}, nil
	}
	var points []int
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		n, err := strconv.Atoi(tok)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid -ranks value %q (want positive integers)", tok)
		}
		points = append(points, n)
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("empty -ranks list")
	}
	return points, nil
}

// parseClocks turns the -clock-sweep flag into Hz points: either the
// literal "ladder" (the cluster's full DVFS ladder, resolved by
// campaign.FrequencySweep) or a comma-separated list of GHz values.
func parseClocks(s string) ([]float64, error) {
	s = strings.TrimSpace(s)
	if strings.EqualFold(s, "ladder") {
		return nil, nil // FrequencySweep expands nil to the full ladder
	}
	var clocks []float64
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		ghz, err := strconv.ParseFloat(tok, 64)
		if err != nil || ghz <= 0 {
			return nil, fmt.Errorf("invalid -clock-sweep value %q (want positive GHz)", tok)
		}
		clocks = append(clocks, ghz*1e9)
	}
	if len(clocks) == 0 {
		return nil, fmt.Errorf("empty -clock-sweep list")
	}
	return clocks, nil
}

// runClockSweep executes a frequency sweep on the campaign pool and
// prints one summary row per clock point.
func runClockSweep(engine *campaign.Engine, base spec.RunSpec, clocks []float64) error {
	results, err := engine.FrequencySweep(base, clocks)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("%s / %s on %s, %d ranks: %d-point frequency sweep",
			base.Benchmark, base.Class, base.Cluster.Name, base.Ranks, len(results)),
		"clock", "wall", "perf", "chip power", "energy", "J/Gflop", "EDP Js")
	for i, p := range analysis.ClockPoints(results) {
		u := results[i].Usage
		t.AddRow(
			units.Frequency(p.ClockHz),
			units.Seconds(p.Wall),
			units.FlopRate(u.PerfFlops()),
			units.Power(u.ChipPower()),
			units.Energy(p.Energy),
			fmt.Sprintf("%.2f", p.EnergyPerFlop*1e9),
			fmt.Sprintf("%.3g", p.EDP))
	}
	return t.Write(os.Stdout)
}

// runSweep executes a rank sweep on the campaign pool and prints one
// summary row per point.
func runSweep(engine *campaign.Engine, base spec.RunSpec, points []int) error {
	results, err := engine.Sweep(base, points)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("%s / %s on %s: %d-point sweep",
			base.Benchmark, base.Class, base.Cluster.Name, len(points)),
		"ranks", "nodes", "wall", "perf", "mem BW", "chip power", "energy", "MPI %")
	for _, r := range results {
		u := r.Usage
		t.AddRow(
			fmt.Sprintf("%d", u.Ranks),
			fmt.Sprintf("%d", u.Nodes),
			units.Seconds(u.Wall),
			units.FlopRate(u.PerfFlops()),
			units.Bandwidth(u.MemBandwidth()),
			units.Power(u.ChipPower()),
			units.Energy(u.TotalEnergy()),
			fmt.Sprintf("%.1f", 100*u.MPIFraction()))
	}
	return t.Write(os.Stdout)
}

// newEngine builds the campaign engine, attaching the persistent store
// when -cache-dir is set and applying the -sim-workers grant policy.
func newEngine(workers int, cacheDir string, simWorkers int, simStatic bool) *campaign.Engine {
	engine, err := campaign.NewWithCacheDir(workers, cacheDir)
	if err != nil {
		fatal(err)
	}
	engine.Scheduler().SetSimWorkers(simWorkers)
	engine.Scheduler().SetStaticWindows(simStatic)
	return engine
}

// reportStats prints the campaign cache counters to stderr when a
// persistent store is in play, and — under -v — the parallel engine's
// window accounting.
func reportStats(engine *campaign.Engine, cacheDir string, verbose bool) {
	if cacheDir != "" {
		fmt.Fprintln(os.Stderr, engine.Stats())
	}
	if !verbose {
		return
	}
	pt := psim.Snapshot()
	if pt.Runs == 0 {
		fmt.Fprintln(os.Stderr, "psim: no partitioned runs (serial engine only)")
		return
	}
	fmt.Fprintf(os.Stderr,
		"psim: %d runs (%d adaptive), %d windows (%d widened), %d mail merged, %d idle partition-windows, window span %.3gs..%.3gs\n",
		pt.Runs, pt.AdaptiveRuns, pt.Windows, pt.AdaptiveWindows,
		pt.Mail, pt.IdleParts, pt.Narrowest, pt.Widest)
}

// stopProfiling flushes any active profiles; fatal exits skip deferred
// calls, so it is invoked explicitly there (it is idempotent).
var stopProfiling = func() {}

func fatal(err error) {
	stopProfiling()
	fmt.Fprintln(os.Stderr, "spechpc:", err)
	os.Exit(1)
}
