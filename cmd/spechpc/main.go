// Command spechpc runs a single simulated SPEChpc 2021 benchmark on one
// of the paper's clusters and reports SPEC-style verified results:
// runtime, performance, bandwidth, power, energy, and the MPI share.
//
// Usage:
//
//	spechpc -list
//	spechpc -bench tealeaf -cluster A -ranks 72 [-class tiny] [-steps 8] [-trace]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/spechpc/spechpc-sim/internal/benchmarks/bench"
	_ "github.com/spechpc/spechpc-sim/internal/benchmarks/suite"
	"github.com/spechpc/spechpc-sim/internal/machine"
	"github.com/spechpc/spechpc-sim/internal/report"
	"github.com/spechpc/spechpc-sim/internal/spec"
	"github.com/spechpc/spechpc-sim/internal/trace"
	"github.com/spechpc/spechpc-sim/internal/units"
)

func main() {
	list := flag.Bool("list", false, "list benchmarks and exit")
	name := flag.String("bench", "", "benchmark name (see -list)")
	clusterFlag := flag.String("cluster", "A", "cluster: A (Ice Lake) or B (Sapphire Rapids)")
	ranks := flag.Int("ranks", 0, "MPI ranks (default: one ccNUMA domain)")
	classFlag := flag.String("class", "tiny", "workload class: tiny or small")
	steps := flag.Int("steps", 0, "simulated steps (0 = kernel default)")
	doTrace := flag.Bool("trace", false, "print the per-state time breakdown")
	flag.Parse()

	if *list {
		t := report.NewTable("SPEChpc 2021 benchmarks (simulated)",
			"ID", "Name", "Language", "LOC", "Collective", "Memory-bound", "Numerics")
		for _, b := range bench.All() {
			mb := ""
			if b.MemoryBound {
				mb = "yes"
			}
			t.AddRow(fmt.Sprintf("%02d", b.ID), b.Name, b.Language,
				fmt.Sprintf("%d", b.LOC), b.Collective, mb, b.Numerics)
		}
		if err := t.Write(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *name == "" {
		fatal(fmt.Errorf("missing -bench (try -list)"))
	}

	var cluster *machine.ClusterSpec
	switch *clusterFlag {
	case "A", "a":
		cluster = machine.ClusterA()
	case "B", "b":
		cluster = machine.ClusterB()
	default:
		fatal(fmt.Errorf("unknown cluster %q (want A or B)", *clusterFlag))
	}
	class := bench.Tiny
	if *classFlag == "small" {
		class = bench.Small
	}
	n := *ranks
	if n <= 0 {
		n = cluster.CPU.CoresPerDomain()
	}

	res, err := spec.Run(spec.RunSpec{
		Benchmark: *name,
		Class:     class,
		Cluster:   cluster,
		Ranks:     n,
		Options:   bench.Options{SimSteps: *steps},
	})
	if err != nil {
		fatal(err)
	}

	u := res.Usage
	t := report.NewTable(
		fmt.Sprintf("%s / %s on %s, %d ranks (%d nodes)",
			*name, class, cluster.Name, u.Ranks, u.Nodes),
		"metric", "value")
	t.AddRow("verified", "yes (all checks passed)")
	t.AddRow("wall time (full workload)", units.Seconds(u.Wall))
	t.AddRow("performance", units.FlopRate(u.PerfFlops()))
	t.AddRow("AVX-DP performance", units.FlopRate(u.PerfFlopsSIMD()))
	t.AddRow("vectorization ratio", fmt.Sprintf("%.1f%%", 100*u.SIMDRatio()))
	t.AddRow("memory bandwidth", units.Bandwidth(u.MemBandwidth()))
	t.AddRow("memory data volume", units.BytesDecimal(u.BytesMem))
	t.AddRow("chip power", units.Power(u.ChipPower()))
	t.AddRow("DRAM power", units.Power(u.DRAMPower()))
	t.AddRow("total energy", units.Energy(u.TotalEnergy()))
	t.AddRow("energy-delay product", fmt.Sprintf("%.3g Js", u.EDP()))
	t.AddRow("MPI time share", fmt.Sprintf("%.1f%%", 100*u.MPIFraction()))
	for _, c := range res.Report.Checks {
		t.AddRow("check: "+c.Name, fmt.Sprintf("%.3g (ok)", c.Value))
	}
	if err := t.Write(os.Stdout); err != nil {
		fatal(err)
	}

	if *doTrace {
		tt := report.NewTable("Global time shares by state", "state", "share %")
		for _, k := range trace.Kinds() {
			f := res.Trace.GlobalFraction(k)
			if f > 0.0005 {
				tt.AddRow(k.String(), fmt.Sprintf("%.1f", 100*f))
			}
		}
		if err := tt.Write(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spechpc:", err)
	os.Exit(1)
}
